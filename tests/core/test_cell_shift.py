"""Tests for the Cell Shift operator (Algorithm 1 + respace strategy)."""

import pytest

from repro.core.cell_shift import CellShiftReport, cell_shift
from repro.errors import FlowError


def exploitable_total(layout, thresh=20):
    return sum(
        c.weight for c in layout.gap_graph().exploitable_components(thresh)
    )


class TestInvariants:
    @pytest.fixture(scope="class")
    def shifted(self, misty_design):
        layout = misty_design.layout.clone()
        report = cell_shift(layout, thresh_er=20)
        return layout, report, misty_design

    def test_layout_stays_legal(self, shifted):
        layout, _, _ = shifted
        layout.validate()

    def test_netlist_untouched(self, shifted):
        layout, _, design = shifted
        assert layout.netlist.signature() == design.netlist.signature()

    def test_cells_stay_in_their_rows(self, shifted):
        layout, _, design = shifted
        for name, pl in layout.placements.items():
            assert pl.row == design.layout.placement(name).row

    def test_cell_order_preserved_per_row(self, shifted):
        layout, _, design = shifted
        for row in range(layout.num_rows):
            before = [p.name for p in design.layout.occupancy[row]]
            after = [p.name for p in layout.occupancy[row]]
            assert before == after

    def test_free_space_conserved(self, shifted):
        layout, _, design = shifted
        assert layout.used_sites() == design.layout.used_sites()

    def test_report_populated(self, shifted):
        _, report, _ = shifted
        assert report.moves > 0
        assert report.shifted_sites > 0
        assert report.regions_after <= report.regions_before


class TestEffectiveness:
    def test_exploitable_sites_reduced(self, misty_design):
        layout = misty_design.layout.clone()
        before = exploitable_total(layout)
        cell_shift(layout, thresh_er=20)
        after = exploitable_total(layout)
        assert after < before * 0.5

    def test_respects_fixed_cells(self, misty_design):
        layout = misty_design.layout.clone()
        pinned = list(layout.placements)[:20]
        before = {n: layout.placement(n) for n in pinned}
        layout.fixed.update(pinned)
        cell_shift(layout, thresh_er=20)
        for n in pinned:
            assert layout.placement(n) == before[n]

    def test_greedy_strategy_also_reduces(self, present_design):
        layout = present_design.layout.clone()
        before = exploitable_total(layout)
        report = cell_shift(layout, thresh_er=20, strategy="greedy")
        layout.validate()
        assert exploitable_total(layout) <= before
        assert report.moves > 0

    def test_respace_beats_greedy(self, present_design):
        a = present_design.layout.clone()
        cell_shift(a, thresh_er=20, strategy="respace")
        b = present_design.layout.clone()
        cell_shift(b, thresh_er=20, strategy="greedy")
        assert exploitable_total(a) <= exploitable_total(b)

    def test_distance_aware_scoring(self, misty_design):
        from repro.security.exploitable import exploitable_distance

        d = misty_design
        layout = d.layout.clone()
        dists = {a: exploitable_distance(d.layout, d.sta, a) for a in d.assets}
        report = cell_shift(
            layout, thresh_er=20, assets=d.assets, distances=dists
        )
        layout.validate()
        assert report.moves > 0


class TestParameters:
    def test_bad_threshold(self, present_design):
        with pytest.raises(FlowError):
            cell_shift(present_design.layout.clone(), thresh_er=0)

    def test_bad_strategy(self, present_design):
        with pytest.raises(FlowError):
            cell_shift(present_design.layout.clone(), strategy="bogus")

    def test_threshold_one_packs_everything(self, tiny_design):
        layout = tiny_design["layout"].clone()
        cell_shift(layout, thresh_er=60)
        assert exploitable_total(layout, 60) <= exploitable_total(
            tiny_design["layout"], 60
        )

    def test_deterministic(self, present_design):
        a = present_design.layout.clone()
        b = present_design.layout.clone()
        cell_shift(a, thresh_er=20)
        cell_shift(b, thresh_er=20)
        assert a.placements == b.placements
