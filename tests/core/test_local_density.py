"""Tests for the LDA operator (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.local_density import (
    LdaReport,
    _sigmoid,
    asset_density_caps,
    local_density_adjustment,
)
from repro.errors import FlowError


class TestSigmoid:
    def test_midpoint(self):
        assert _sigmoid(0.0) == pytest.approx(0.5)

    def test_monotone_and_bounded(self):
        xs = np.linspace(-10, 10, 41)
        ys = [_sigmoid(x) for x in xs]
        assert all(0 < y < 1 for y in ys)
        assert all(b > a for a, b in zip(ys, ys[1:]))

    def test_extreme_values_stable(self):
        assert _sigmoid(-1000) == pytest.approx(0.0, abs=1e-9)
        assert _sigmoid(1000) == pytest.approx(1.0, abs=1e-9)


class TestDensityCaps:
    def test_shape_and_range(self, misty_design):
        caps = asset_density_caps(misty_design.layout, misty_design.assets, 8)
        assert caps.shape == (8, 8)
        assert (caps > 0).all() and (caps <= 1).all()

    def test_asset_tiles_get_higher_caps(self, misty_design):
        layout = misty_design.layout
        caps = asset_density_caps(layout, misty_design.assets, 8)
        core = layout.core
        tile_w, tile_h = core.width / 8, core.height / 8
        asset_tiles = set()
        for a in misty_design.assets:
            c = layout.cell_center(a)
            asset_tiles.add(
                (min(int(c.x / tile_w), 7), min(int(c.y / tile_h), 7))
            )
        asset_caps = [caps[t] for t in asset_tiles]
        other_caps = [
            caps[ix, iy]
            for ix in range(8)
            for iy in range(8)
            if (ix, iy) not in asset_tiles
        ]
        assert np.mean(asset_caps) > np.mean(other_caps)

    def test_feasibility_bias(self, misty_design):
        caps = asset_density_caps(misty_design.layout, misty_design.assets, 8)
        assert caps.mean() >= misty_design.layout.utilization()

    def test_uniform_assets_give_uniform_caps(self, tiny_design):
        """σ = 0 path: all tiles equal after smoothing."""
        layout = tiny_design["layout"]
        # single tile grid: trivially uniform
        caps = asset_density_caps(layout, tiny_design["assets"], 1)
        assert caps.shape == (1, 1)


class TestLdaOperator:
    def test_bad_params(self, misty_design):
        with pytest.raises(FlowError):
            local_density_adjustment(
                misty_design.layout.clone(), misty_design.assets, n=0
            )
        with pytest.raises(FlowError):
            local_density_adjustment(
                misty_design.layout.clone(), misty_design.assets, n_iter=0
            )

    def test_layout_legal_and_netlist_untouched(self, misty_design):
        layout = misty_design.layout.clone()
        sig = layout.netlist.signature()
        report = local_density_adjustment(
            layout, misty_design.assets, n=8, n_iter=1
        )
        layout.validate()
        assert layout.netlist.signature() == sig
        assert isinstance(report, LdaReport)
        assert report.grid_n == 8

    def test_blockages_cleared_by_default(self, misty_design):
        layout = misty_design.layout.clone()
        local_density_adjustment(layout, misty_design.assets, n=4, n_iter=1)
        assert not layout.blockages

    def test_keep_blockages_option(self, misty_design):
        layout = misty_design.layout.clone()
        local_density_adjustment(
            layout, misty_design.assets, n=4, n_iter=1, keep_blockages=True
        )
        assert len(layout.blockages) == 16

    def test_moves_cells(self, misty_design):
        layout = misty_design.layout.clone()
        report = local_density_adjustment(
            layout, misty_design.assets, n=16, n_iter=1
        )
        assert report.total_moved > 0
        assert report.total_displacement_um > 0

    def test_iterations_accumulate(self, misty_design):
        layout = misty_design.layout.clone()
        report = local_density_adjustment(
            layout, misty_design.assets, n=8, n_iter=2
        )
        assert len(report.iterations) == 2

    def test_densifies_asset_neighborhood(self, misty_design):
        """Density around the asset bank must not decrease."""
        from repro.geometry import Rect

        layout = misty_design.layout.clone()
        xs = [layout.cell_center(a).x for a in misty_design.assets]
        ys = [layout.cell_center(a).y for a in misty_design.assets]
        hood = Rect(min(xs), min(ys), max(xs), max(ys)).inflated(5.0)
        before = layout.region_density(hood)
        local_density_adjustment(layout, misty_design.assets, n=16, n_iter=2)
        after = layout.region_density(hood)
        assert after >= before - 0.02
