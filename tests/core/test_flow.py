"""Tests for the GDSII-Guard flow."""

import pytest

from repro.core.flow import GDSIIGuard
from repro.core.params import FlowConfig, ParameterSpace


@pytest.fixture(scope="module")
def guard(misty_design):
    d = misty_design
    return GDSIIGuard(
        d.layout, d.constraints, d.assets, baseline_routing=d.routing
    )


@pytest.fixture(scope="module")
def cs_result(guard):
    return guard.run(ParameterSpace(10).default())


class TestBaselineState:
    def test_baseline_metrics_computed(self, guard):
        assert guard.baseline_security.er_sites > 0
        assert guard.baseline_power > 0
        assert guard.baseline_distances

    def test_baseline_never_mutated(self, guard, misty_design):
        assert guard.baseline.placements == misty_design.layout.placements


class TestRun:
    def test_cs_flow_result(self, cs_result, guard):
        r = cs_result
        assert r.config.op_select == "CS"
        assert 0.0 <= r.score < 1.0  # strictly better than baseline
        assert r.power > 0
        assert r.drc_count >= 0
        assert r.runtime_s > 0
        r.layout.validate()

    def test_objectives_tuple(self, cs_result):
        sec, neg_tns = cs_result.objectives
        assert sec == cs_result.score
        assert neg_tns == -cs_result.tns

    def test_lda_flow(self, guard):
        cfg = FlowConfig("LDA", 8, 1, tuple([1.0] * 10))
        r = guard.run(cfg)
        assert r.config.op_select == "LDA"
        r.layout.validate()

    def test_rws_reduces_tracks(self, guard):
        base = guard.run(ParameterSpace(10).default())
        wide = guard.run(FlowConfig("CS", 2, 1, tuple([1.5] * 10)))
        assert (
            wide.routing.grid.free_tracks_total()
            < base.routing.grid.free_tracks_total()
        )

    def test_netlist_protected(self, guard, misty_design):
        guard.run(ParameterSpace(10).default())
        assert (
            misty_design.netlist.signature() == guard._netlist_signature
        )

    def test_constraint_violation_zero_when_feasible(self, cs_result, guard):
        if cs_result.feasible:
            v = cs_result.constraint_violation(
                n_drc=guard.n_drc,
                beta_power=guard.beta_power,
                base_power=guard.baseline_power,
            )
            assert v == 0.0

    def test_constraint_violation_positive_on_drc(self, cs_result):
        v = cs_result.constraint_violation(n_drc=-1)
        assert v > 0

    def test_preprocess_freeze_option(self, guard):
        layout = guard.baseline.clone()
        guard.preprocess(layout, freeze_assets=True)
        assert set(guard.assets) <= layout.fixed
        layout2 = guard.baseline.clone()
        guard.preprocess(layout2)
        assert not layout2.fixed

    def test_independent_runs_do_not_interact(self, guard):
        a = guard.run(ParameterSpace(10).default())
        b = guard.run(ParameterSpace(10).default())
        assert a.score == pytest.approx(b.score)
        assert a.tns == pytest.approx(b.tns)
