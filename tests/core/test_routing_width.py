"""Tests for the RWS operator."""

import pytest

from repro.core.routing_width import routing_width_scaling
from repro.errors import FlowError


class TestRws:
    def test_wrong_scale_count_rejected(self, tiny_design):
        with pytest.raises(FlowError):
            routing_width_scaling(tiny_design["layout"], [1.0, 1.2])

    def test_identity_matches_plain_route(self, tiny_design):
        layout = tiny_design["layout"]
        ndr, routing = routing_width_scaling(layout, [1.0] * 10)
        assert ndr.is_default()
        assert routing.grid.usage.sum() == pytest.approx(
            tiny_design["routing"].grid.usage.sum()
        )

    def test_scaling_reduces_free_tracks(self, tiny_design):
        layout = tiny_design["layout"]
        _, base = routing_width_scaling(layout, [1.0] * 10)
        _, wide = routing_width_scaling(layout, [1.5] * 10)
        assert wide.grid.free_tracks_total() < base.grid.free_tracks_total()

    def test_selective_layer_scaling(self, tiny_design):
        layout = tiny_design["layout"]
        scales = [1.0] * 10
        scales[2] = 1.5  # widen metal3 only
        _, result = routing_width_scaling(layout, scales)
        _, base = routing_width_scaling(layout, [1.0] * 10)
        # metal3 track usage grows (each wire 1.5x wide, though the
        # congestion-aware router may shift some nets to other tiers);
        # total consumed tracks grow as well.
        assert result.grid.usage[2].sum() > base.grid.usage[2].sum()
        assert result.grid.usage.sum() > base.grid.usage.sum()
