"""Property-based tests for the Cell Shift operator on random layouts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cell_shift import cell_shift
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist
from repro.tech.library import nangate45_library
from repro.tech.technology import nangate45_like

LIB = nangate45_library()
TECH = nangate45_like()


def build_random_layout(rows, sites, placements):
    """Layout with unconnected cells at the given (row, site, master) spots."""
    nl = Netlist("prop", LIB)
    layout = Layout(nl, TECH, num_rows=rows, sites_per_row=sites)
    for k, (row, site, master) in enumerate(placements):
        name = f"c{k}"
        nl.add_instance(name, master)
        width = nl.instance(name).width_sites
        if 0 <= row < rows and layout.occupancy[row].can_place(site, width):
            layout.place(name, row, site)
        # unplaceable instances stay in the netlist, just unplaced
    return layout


layout_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),
        st.integers(0, 56),
        st.sampled_from(["INV_X1", "NAND2_X1", "BUF_X1", "DFF_X1"]),
    ),
    min_size=3,
    max_size=30,
)


@settings(max_examples=30, deadline=None)
@given(layout_strategy, st.integers(5, 25))
def test_respace_preserves_layout_invariants(placements, thresh):
    layout = build_random_layout(6, 60, placements)
    placed_before = set(layout.placements)
    used_before = layout.used_sites()
    rows_before = {n: layout.placement(n).row for n in placed_before}
    order_before = [
        [p.name for p in occ] for occ in layout.occupancy
    ]

    cell_shift(layout, thresh_er=thresh)

    layout.validate()
    assert set(layout.placements) == placed_before
    assert layout.used_sites() == used_before
    for n in placed_before:
        assert layout.placement(n).row == rows_before[n]
    for row, names in enumerate(order_before):
        assert [p.name for p in layout.occupancy[row]] == names


@settings(max_examples=20, deadline=None)
@given(layout_strategy)
def test_respace_never_increases_exploitable_sites(placements):
    layout = build_random_layout(6, 60, placements)

    def exploitable(lay):
        return sum(
            c.weight for c in lay.gap_graph().exploitable_components(20)
        )

    before = exploitable(layout)
    cell_shift(layout, thresh_er=20)
    assert exploitable(layout) <= before
