"""Cross-design flow behaviour: the paper's operator-selection story.

These tests pin the emergent structure the GA exploits: on timing-tight,
dense designs LDA is the feasible operator (CS blows the DRC budget); on
timing-loose designs CS wins outright.
"""

import pytest

from repro.bench.designs import build_design
from repro.core.flow import GDSIIGuard
from repro.core.params import FlowConfig


@pytest.fixture(scope="module")
def tight_guard():
    d = build_design("openMSP430_2")
    return d, GDSIIGuard(
        d.layout, d.constraints, d.assets, baseline_routing=d.routing
    )


@pytest.fixture(scope="module")
def loose_guard(misty_design):
    d = misty_design
    return d, GDSIIGuard(
        d.layout, d.constraints, d.assets, baseline_routing=d.routing
    )


class TestOperatorSelectionStory:
    def test_lda_strong_and_feasible_on_tight_design(self, tight_guard):
        _, guard = tight_guard
        r = guard.run(FlowConfig("LDA", 16, 2, tuple([1.0] * 10)))
        assert r.feasible
        assert r.score < 0.2

    def test_lda_costs_timing_on_tight_design(self, tight_guard):
        d, guard = tight_guard
        r = guard.run(FlowConfig("LDA", 16, 2, tuple([1.0] * 10)))
        assert r.tns <= d.sta.tns + 1e-9  # no free lunch

    def test_cs_wins_outright_on_loose_design(self, loose_guard):
        d, guard = loose_guard
        r = guard.run(FlowConfig("CS", 2, 1, tuple([1.0] * 10)))
        assert r.feasible
        assert r.score < 0.1
        assert r.tns == pytest.approx(0.0, abs=1e-9)  # loose stays loose

    def test_lda_partial_on_loose_design(self, loose_guard):
        _, guard = loose_guard
        cs = guard.run(FlowConfig("CS", 2, 1, tuple([1.0] * 10)))
        lda = guard.run(FlowConfig("LDA", 16, 2, tuple([1.0] * 10)))
        assert cs.score <= lda.score + 1e-9
