"""Tests for the Table-I parameter space."""

import numpy as np
import pytest

from repro.core.params import (
    LDA_ITER_CHOICES,
    LDA_N_CHOICES,
    OP_CHOICES,
    RWS_SCALE_CHOICES,
    FlowConfig,
    ParameterSpace,
)
from repro.errors import FlowError


class TestTableI:
    """Assert the parameter space matches Table I of the paper."""

    def test_candidate_values(self):
        assert OP_CHOICES == ("CS", "LDA")
        assert LDA_N_CHOICES == (2, 4, 8, 16, 32)
        assert LDA_ITER_CHOICES == (1, 2, 3)
        assert RWS_SCALE_CHOICES == (1.0, 1.2, 1.5)

    def test_space_size_is_papers_945k(self):
        """3^10 × (1 + 5·3) = 944,784 — the paper's 'up to 945k'."""
        assert ParameterSpace(10).size() == 944_784

    def test_space_size_small_stack(self):
        assert ParameterSpace(1).size() == 3 * 16


class TestFlowConfig:
    def test_validation(self):
        with pytest.raises(FlowError):
            FlowConfig("XX", 2, 1, (1.0,))
        with pytest.raises(FlowError):
            FlowConfig("CS", 3, 1, (1.0,))
        with pytest.raises(FlowError):
            FlowConfig("CS", 2, 9, (1.0,))
        with pytest.raises(FlowError):
            FlowConfig("CS", 2, 1, (1.3,))

    def test_ndr(self):
        cfg = FlowConfig("CS", 2, 1, (1.0, 1.2, 1.5))
        assert cfg.ndr().scales == (1.0, 1.2, 1.5)

    def test_canonical_collapses_lda_genes_for_cs(self):
        a = FlowConfig("CS", 8, 3, (1.0,))
        b = FlowConfig("CS", 2, 1, (1.0,))
        assert a.canonical() == b.canonical()
        lda = FlowConfig("LDA", 8, 3, (1.0,))
        assert lda.canonical() == lda


class TestCodec:
    @pytest.fixture()
    def space(self):
        return ParameterSpace(10)

    def test_encode_decode_round_trip(self, space):
        rng = np.random.default_rng(0)
        for _ in range(50):
            cfg = space.random(rng)
            assert space.decode(space.encode(cfg)) == cfg

    def test_genome_length(self, space):
        assert space.genome_length == 13
        assert len(space.gene_cardinalities()) == 13

    def test_wrong_length_rejected(self, space):
        with pytest.raises(FlowError):
            space.decode([0] * 5)
        with pytest.raises(FlowError):
            space.encode(FlowConfig("CS", 2, 1, (1.0,)))

    def test_default(self, space):
        d = space.default()
        assert d.op_select == "CS"
        assert all(s == 1.0 for s in d.rws_scales)


class TestGAOperators:
    @pytest.fixture()
    def space(self):
        return ParameterSpace(4)

    def test_random_uniform_valid(self, space):
        rng = np.random.default_rng(1)
        for _ in range(100):
            space.random(rng)  # validation happens in the constructor

    def test_mutate_changes_something(self, space):
        rng = np.random.default_rng(2)
        cfg = space.default()
        changed = sum(space.mutate(cfg, rng) != cfg for _ in range(20))
        assert changed == 20  # guaranteed at least one gene flip

    def test_crossover_preserves_alleles(self, space):
        rng = np.random.default_rng(3)
        a = space.random(rng)
        b = space.random(rng)
        c1, c2 = space.crossover(a, b, rng)
        ga, gb = space.encode(a), space.encode(b)
        g1, g2 = space.encode(c1), space.encode(c2)
        for k in range(space.genome_length):
            assert {g1[k], g2[k]} == {ga[k], gb[k]}

    def test_bad_space(self):
        with pytest.raises(FlowError):
            ParameterSpace(0)
