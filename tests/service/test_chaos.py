"""Chaos suite for the service: injected faults and a killed daemon.

Reuses :mod:`repro.resilience.faults` — the in-thread daemon shares the
test process, so an installed plan reaches the job's evaluations
directly.  Every scenario asserts the *exact* resilience counters and
that the recovered front stays bitwise equal to the direct run: chaos
changes survival, never numbers.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import ServiceError
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.supervisor import SupervisionConfig
from repro.service.client import ServiceClient
from repro.service.jobs import JobState

from tests.service.conftest import direct_front, explore_spec

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestInjectedFaults:
    def test_worker_crash_during_served_job(self, make_service, client):
        """A forked evaluation worker dies abruptly mid-generation; the
        supervisor replaces it and the job still lands on the direct
        run's exact front."""
        faults.install(FaultPlan([
            FaultSpec(generation=1, kind="crash", individual=2, attempt=0),
        ]))
        with make_service(workers=1) as (url, _app):
            c = client(url)
            job = c.submit(explore_spec(seed=3, processes=2))
            record = c.wait(job["id"], timeout_s=120.0)
            assert record["state"] == JobState.DONE
            result = c.result(job["id"])
        faults.clear()  # the oracle below must run chaos-free
        assert [s for s, _ in record["history"]] == [
            JobState.QUEUED, JobState.RUNNING, JobState.DONE,
        ]
        assert record["resilience"] == {
            "retries": 1,
            "worker_deaths": 1,
            "timeouts": 0,
            "task_failures": 0,
            "degraded": False,
        }
        assert result["front"] == direct_front(seed=3)

    def test_worker_hang_trips_timeout_during_served_job(
        self, make_service, client
    ):
        """A hung evaluation worker is killed at the supervision timeout
        and its task re-dispatched — one timeout, one retry, same
        front."""
        faults.install(FaultPlan([
            FaultSpec(
                generation=1, kind="hang", individual=2, attempt=0,
                hang_s=30.0,
            ),
        ]))
        supervision = SupervisionConfig(
            timeout_s=0.3, backoff_s=0.0, poll_s=0.01
        )
        with make_service(
            workers=1, supervision=supervision
        ) as (url, _app):
            c = client(url)
            job = c.submit(explore_spec(seed=3, processes=2))
            record = c.wait(job["id"], timeout_s=120.0)
            assert record["state"] == JobState.DONE
            result = c.result(job["id"])
        faults.clear()  # the oracle below must run chaos-free
        assert record["resilience"] == {
            "retries": 1,
            "worker_deaths": 0,
            "timeouts": 1,
            "task_failures": 0,
            "degraded": False,
        }
        assert result["front"] == direct_front(seed=3)

    def test_interrupt_fault_drives_job_through_retrying_to_done(
        self, make_service, client
    ):
        """An interrupt at the gen-1 boundary escapes the explorer as a
        library error → the scheduler retries the job from its durable
        checkpoint; a flow-error in gen 2 then exercises the in-job
        retry on the *resumed* attempt.  The state trail and counters
        are exact, and the front is still bitwise."""
        faults.install(FaultPlan([
            FaultSpec(generation=1, kind="interrupt"),
            FaultSpec(
                generation=2, kind="flow-error", individual=0, attempt=0,
            ),
        ]))
        with make_service(workers=1) as (url, _app):
            c = client(url)
            job = c.submit(explore_spec(seed=3))
            record = c.wait(job["id"], timeout_s=120.0)
            assert record["state"] == JobState.DONE
            result = c.result(job["id"])
        faults.clear()  # the oracle below must run chaos-free
        assert [s for s, _ in record["history"]] == [
            JobState.QUEUED,
            JobState.RUNNING,
            JobState.RETRYING,
            JobState.RUNNING,
            JobState.DONE,
        ]
        assert record["attempts"] == 2
        assert record["resilience"] == {
            "retries": 1,
            "worker_deaths": 0,
            "timeouts": 0,
            "task_failures": 1,
            "degraded": False,
        }
        # the retry resumed from the gen-1 checkpoint, not from scratch
        assert result["resumed_from"] == 1
        assert result["front"] == direct_front(seed=3)

    def test_job_fails_after_exhausting_job_level_retries(
        self, make_service, client
    ):
        """Interrupts at *every* boundary keep killing the job; after
        ``max_job_retries`` it lands in ``failed`` with the error."""
        faults.install(FaultPlan([
            FaultSpec(generation=g, kind="interrupt") for g in range(4)
        ]))
        with make_service(workers=1, max_job_retries=1) as (url, _app):
            c = client(url)
            job = c.submit(explore_spec(seed=3))
            record = c.wait(job["id"], timeout_s=120.0)
        assert record["state"] == JobState.FAILED
        assert record["attempts"] == 2
        assert "injected interrupt" in record["error"]


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _spawn_daemon(port, state_dir, resume=False, log=None,
                  eval_sleep_s=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if eval_sleep_s is not None:
        # throttle the fake guard so a signal sent "mid-exploration"
        # reliably lands while the job is still running (the fake
        # stall-terminates after a handful of millisecond generations)
        env["REPRO_FAKE_EVAL_SLEEP_S"] = str(eval_sleep_s)
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--guard", "fake",
        "--host", "127.0.0.1",
        "--port", str(port),
        "--state-dir", str(state_dir),
        "--workers", "1",
    ]
    if resume:
        cmd.append("--resume")
    return subprocess.Popen(
        cmd, env=env, cwd=REPO_ROOT,
        stdout=log or subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def _wait_reachable(client, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            return client.healthz()
        except ServiceError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)


class TestKilledDaemon:
    def test_sigkilled_daemon_resumed_finishes_all_jobs_bitwise(
        self, tmp_path
    ):
        """SIGKILL the daemon with one job mid-exploration and two more
        queued; a restart with ``--resume`` must finish all three with
        fronts bitwise identical to uninterrupted direct runs."""
        port = _free_port()
        state_dir = tmp_path / "state"
        log_path = tmp_path / "daemon.log"
        specs = [
            explore_spec(seed=3, generations=120),
            explore_spec(seed=5, generations=30),
            explore_spec(seed=7, generations=30),
        ]
        with open(log_path, "w") as log:
            daemon = _spawn_daemon(
                port, state_dir, log=log, eval_sleep_s=0.01
            )
            try:
                c = ServiceClient(f"http://127.0.0.1:{port}")
                _wait_reachable(c)
                jobs = [c.submit(s) for s in specs]
                # let the first job make real progress, then pull the plug
                deadline = time.monotonic() + 60.0
                while True:
                    progress = c.job(jobs[0]["id"])["progress"]
                    if progress.get("generation", -1) >= 5:
                        break
                    assert time.monotonic() < deadline, (
                        f"daemon never progressed: {log_path.read_text()}"
                    )
                    time.sleep(0.02)
            finally:
                daemon.kill()
                daemon.wait(timeout=30)

            revived = _spawn_daemon(port, state_dir, resume=True, log=log)
            try:
                c = ServiceClient(f"http://127.0.0.1:{port}")
                _wait_reachable(c)
                records = [
                    c.wait(j["id"], timeout_s=300.0) for j in jobs
                ]
                assert [r["state"] for r in records] == [
                    JobState.DONE
                ] * 3, log_path.read_text()
                results = [c.result(j["id"]) for j in jobs]
                # The killed job really did continue from its checkpoint
                # (progress posts before the checkpoint write, so the
                # durable generation may trail the last one seen by 1).
                assert results[0]["resumed_from"] is not None
                assert results[0]["resumed_from"] >= 4
            finally:
                revived.send_signal(signal.SIGTERM)
                try:
                    revived.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    revived.kill()
                    revived.wait(timeout=30)

        for spec, result in zip(specs, results):
            assert result["front"] == direct_front(
                seed=spec["seed"], generations=spec["generations"]
            ), f"seed {spec['seed']} diverged after daemon kill/resume"

    def test_sigterm_drains_and_journals_interrupted_job(
        self, tmp_path
    ):
        """Graceful SIGTERM: the running job checkpoints at its next
        boundary and is journaled ``interrupted`` for a later resume."""
        port = _free_port()
        state_dir = tmp_path / "state"
        log_path = tmp_path / "daemon.log"
        with open(log_path, "w") as log:
            daemon = _spawn_daemon(
                port, state_dir, log=log, eval_sleep_s=0.01
            )
            try:
                c = ServiceClient(f"http://127.0.0.1:{port}")
                _wait_reachable(c)
                job = c.submit(explore_spec(seed=3, generations=200))
                deadline = time.monotonic() + 60.0
                while True:
                    progress = c.job(job["id"])["progress"]
                    if progress.get("generation", -1) >= 2:
                        break
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                daemon.send_signal(signal.SIGTERM)
                daemon.wait(timeout=60)
            finally:
                if daemon.poll() is None:
                    daemon.kill()
                    daemon.wait(timeout=30)
        journal = json.loads(
            (state_dir / "jobs" / f"{job['id']}.json").read_text()
        )
        assert journal["state"] == JobState.INTERRUPTED
        assert journal["progress"]["cancelled_after_generation"] >= 2
        assert daemon.returncode == 0
