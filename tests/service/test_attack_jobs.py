"""Attack jobs through the service: queue, progress, cancel handoff.

The red-team campaign rides the scheduler's generation-based machinery
(one campaign batch == one "generation"), so these tests assert the
service-level contract: a daemon-run campaign is bitwise equal to a
direct :class:`~repro.redteam.AttackCampaign` run, and the cancel →
``resume_from`` handoff converges to that same oracle.
"""

from __future__ import annotations

import time

import pytest

from repro.redteam import AttackCampaign, AttackGrid
from repro.service.jobs import JobState
from repro.service.testing import FAKE_NUM_LAYERS, FakeAttackSurface

from tests.service.conftest import FAST_SUPERVISION


def attack_spec(design="fakechip", seed=7, **overrides):
    """An attack-job payload with a hardened second target."""
    spec = {
        "kind": "attack",
        "design": design,
        "seed": seed,
        "attempts": 3,
        "grid": "ci",
        "config": {
            "op_select": "CS",
            "lda_n": 2,
            "lda_n_iter": 1,
            "rws_scales": [1.0] * FAKE_NUM_LAYERS,
        },
    }
    spec.update(overrides)
    return spec


def direct_campaign_summary(seed=7, attempts=3, grid="ci"):
    """Oracle: what the daemon's fake targets produce when run directly."""
    result = AttackCampaign(
        [
            ("baseline", FakeAttackSurface("baseline", resistance=0.25)),
            ("hardened", FakeAttackSurface("hardened", resistance=0.6)),
        ],
        AttackGrid.preset(grid),
        attempts=attempts,
        seed=seed,
        supervision=FAST_SUPERVISION,
    ).run()
    return result.summary()


class TestAttackJobs:
    def test_attack_job_matches_direct_campaign(self, make_service, client):
        with make_service() as (url, _app):
            c = client(url)
            job = c.submit(attack_spec())
            record = c.wait(job["id"])
            assert record["state"] == JobState.DONE
            result = c.result(job["id"])
        assert result["kind"] == "attack"
        assert result["design"] == "fakechip"
        assert result["summary"] == direct_campaign_summary()

    def test_hardened_target_never_easier_than_baseline(
        self, make_service, client
    ):
        with make_service() as (url, _app):
            c = client(url)
            job = c.submit(attack_spec())
            c.wait(job["id"])
            result = c.result(job["id"])
        rows = result["summary"]["results"]
        baseline = {
            r["spec_id"]: r["success_rate"]
            for r in rows
            if r["target"] == "baseline"
        }
        hardened = {
            r["spec_id"]: r["success_rate"]
            for r in rows
            if r["target"] == "hardened"
        }
        assert set(hardened) == set(baseline)
        for spec_id, rate in hardened.items():
            assert rate <= baseline[spec_id]

    def test_baseline_only_without_config(self, make_service, client):
        with make_service() as (url, _app):
            c = client(url)
            job = c.submit(attack_spec(config=None))
            c.wait(job["id"])
            result = c.result(job["id"])
        assert result["summary"]["targets"] == ["baseline"]

    def test_final_progress_reports_last_batch(self, make_service, client):
        with make_service() as (url, _app):
            c = client(url)
            job = c.submit(attack_spec())
            record = c.wait(job["id"])
        progress = record["progress"]
        # 2 targets x 2 ci grid points, 1-indexed batch counter
        assert progress["generations"] == 4
        assert progress["generation"] == 4
        assert progress["target"] == "hardened"
        assert {"spec_id", "successes", "attempts"} <= set(progress)

    def test_cancel_then_resume_from_matches_oracle(
        self, make_service, client
    ):
        """DELETE a campaign, resubmit with ``resume_from``: the handoff
        converges to the uninterrupted summary (whether or not the
        cancel landed before the run finished)."""
        with make_service(workers=1) as (url, _app):
            c = client(url)
            job = c.submit(attack_spec(attempts=5))
            time.sleep(0.02)
            try:
                c.cancel(job["id"])
            except Exception:
                pass  # already finished — handoff still must converge
            c.wait(job["id"])
            handoff = c.submit(
                attack_spec(attempts=5, resume_from=job["id"])
            )
            record = c.wait(handoff["id"])
            assert record["state"] == JobState.DONE
            result = c.result(handoff["id"])
        assert result["summary"] == direct_campaign_summary(attempts=5)

    def test_bad_grid_fails_cleanly(self, make_service, client):
        with make_service() as (url, _app):
            c = client(url)
            with pytest.raises(Exception):
                c.submit(attack_spec(grid=""))
