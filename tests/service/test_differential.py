"""Differential end-to-end suite: served results ≡ direct runs, bitwise.

The service's core contract — orchestration must be *invisible* in the
numbers.  A job submitted over HTTP must produce a Pareto front
byte-for-byte equal to the same-seed ``repro explore`` direct run,
regardless of queueing, concurrency, shared-cache warmth, or a
cancel/resume in the middle.
"""

from __future__ import annotations

import threading
import time

from repro.service.jobs import JobState

from tests.service.conftest import (
    SlowGuardFactory,
    direct_front,
    explore_spec,
)


class TestSoloDifferential:
    def test_served_front_matches_direct_run(self, make_service, client):
        with make_service() as (url, _app):
            c = client(url)
            job = c.submit(explore_spec(seed=3))
            record = c.wait(job["id"])
            assert record["state"] == JobState.DONE
            result = c.result(job["id"])
        assert result["front"] == direct_front(seed=3)
        assert result["evaluations"] > 0

    def test_progress_front_converges_to_result_front(
        self, make_service, client
    ):
        with make_service() as (url, _app):
            c = client(url)
            job = c.submit(explore_spec(seed=3))
            record = c.wait(job["id"])
            result = c.result(job["id"])
        progress = record["progress"]
        assert progress["generation"] == 3
        assert progress["generations"] == 3
        # the last boundary's front-so-far IS the final front
        assert progress["front"] == result["front"]
        assert progress["front_size"] == len(result["front"])

    def test_same_seed_resubmission_is_served_from_shared_cache(
        self, make_service, client
    ):
        with make_service(workers=1) as (url, _app):
            c = client(url)
            first = c.submit(explore_spec(seed=3))
            c.wait(first["id"])
            second = c.submit(explore_spec(seed=3))
            c.wait(second["id"])
            r1 = c.result(first["id"])
            r2 = c.result(second["id"])
        assert r2["front"] == r1["front"] == direct_front(seed=3)
        # every evaluation of the rerun hits the daemon-wide cache
        assert r2["evaluations"] == 0
        assert r2["cache_hits"] == r2["cache_requests"]

    def test_harden_job_matches_direct_guard_run(
        self, make_service, client
    ):
        from repro.core.params import ParameterSpace
        from repro.service.testing import FAKE_NUM_LAYERS, FakeGuard

        with make_service() as (url, _app):
            c = client(url)
            job = c.submit({"kind": "harden", "design": "fakechip"})
            record = c.wait(job["id"])
            assert record["state"] == JobState.DONE
            result = c.result(job["id"])
        direct = FakeGuard().run(ParameterSpace(FAKE_NUM_LAYERS).default())
        assert result["objectives"] == list(direct.objectives)
        assert result["violation"] == 0.0


class TestConcurrentDifferential:
    def test_three_concurrent_mixed_priority_jobs_match_direct_runs(
        self, make_service, client
    ):
        """Interleaved same-design jobs share the eval cache yet each
        front stays bitwise equal to its own-seed direct run."""
        seeds_priorities = [(3, 0), (5, 2), (7, 1)]
        with make_service(workers=2) as (url, _app):
            c = client(url)
            jobs = {
                seed: c.submit(
                    explore_spec(seed=seed, priority=priority)
                )
                for seed, priority in seeds_priorities
            }
            results = {}
            for seed, job in jobs.items():
                record = c.wait(job["id"])
                assert record["state"] == JobState.DONE, record
                results[seed] = c.result(job["id"])
        for seed, _priority in seeds_priorities:
            assert results[seed]["front"] == direct_front(seed=seed), (
                f"seed {seed} served front diverged from direct run"
            )

    def test_priority_orders_queued_jobs(self, make_service, client):
        """With one worker busy, the high-priority submission jumps the
        earlier low-priority one in the queue."""
        with make_service(
            workers=1, guard_factory=SlowGuardFactory()
        ) as (url, _app):
            c = client(url)
            blocker = c.submit(explore_spec(seed=11, generations=2))
            low = c.submit(explore_spec(seed=3, priority=0))
            high = c.submit(explore_spec(seed=5, priority=9))
            done = []
            lock = threading.Lock()

            def track(job_id):
                c.wait(job_id, timeout_s=60.0)
                with lock:
                    done.append(job_id)

            threads = [
                threading.Thread(target=track, args=(j["id"],))
                for j in (blocker, low, high)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert done.index(high["id"]) < done.index(low["id"])


class TestCancelResumeDifferential:
    def test_cancel_mid_run_then_resume_is_bitwise_identical(
        self, make_service, client
    ):
        """DELETE a running job mid-generation, then resubmit with
        ``resume_from``: the continuation must land on the exact front
        a never-cancelled run produces."""
        generations = 12
        with make_service(
            workers=1, guard_factory=SlowGuardFactory()
        ) as (url, _app):
            c = client(url)
            job = c.submit(
                explore_spec(seed=3, generations=generations)
            )
            # wait until at least one generation boundary has passed,
            # then cancel while generations are still left to run
            deadline = time.monotonic() + 30.0
            while True:
                progress = c.job(job["id"])["progress"]
                if progress.get("generation", -1) >= 1:
                    break
                assert time.monotonic() < deadline, "job never progressed"
                time.sleep(0.005)
            cancelled = c.cancel(job["id"])
            assert cancelled["state"] in (
                JobState.CANCELLING, JobState.CANCELLED,
            )
            record = c.wait(job["id"], timeout_s=60.0)
            assert record["state"] == JobState.CANCELLED
            k = record["progress"]["cancelled_after_generation"]
            assert 0 <= k < generations
            trail = [s for s, _ in record["history"]]
            assert trail[-2:] == [
                JobState.CANCELLING, JobState.CANCELLED,
            ]

            # handoff: continue the cancelled job's checkpoint lineage
            resumed = c.submit(
                explore_spec(
                    seed=3,
                    generations=generations,
                    resume_from=job["id"],
                )
            )
            resumed_record = c.wait(resumed["id"], timeout_s=120.0)
            assert resumed_record["state"] == JobState.DONE
            result = c.result(resumed["id"])
        assert result["resumed_from"] == k
        assert result["front"] == direct_front(
            seed=3, generations=generations
        )

    def test_cancel_queued_job_never_runs(self, make_service, client):
        with make_service(
            workers=1, guard_factory=SlowGuardFactory()
        ) as (url, _app):
            c = client(url)
            blocker = c.submit(explore_spec(seed=11, generations=3))
            queued = c.submit(explore_spec(seed=5))
            cancelled = c.cancel(queued["id"])
            assert cancelled["state"] == JobState.CANCELLED
            record = c.job(queued["id"])
            assert record["started_at"] is None
            assert record["attempts"] == 0
            c.wait(blocker["id"], timeout_s=60.0)
