"""Regression: journal writes for running jobs stay off the loop thread.

The scheduler serializes each record *on* the event loop (where the
record is mutated) but pushes the actual fsync+rename to a worker
thread via ``asyncio.to_thread``.  This pins that split: while a job
runs, every lifecycle snapshot (running/done) and every progress
snapshot must land from a thread other than ``repro-service``, so a
slow disk can never stall the loop.
"""

import threading

from repro.service.store import JobStore

from .conftest import explore_spec


class TestJournalThreading:
    def test_job_lifecycle_snapshots_write_off_loop(
        self, make_service, client, monkeypatch
    ):
        writes = []
        real = JobStore.write_snapshot

        def recording(self, job_id, text):
            writes.append((threading.current_thread().name, text))
            real(self, job_id, text)

        monkeypatch.setattr(JobStore, "write_snapshot", recording)

        with make_service() as (url, app):
            job = client(url).submit(explore_spec())
            client(url).wait(job["id"])

        states_by_thread = {}
        for thread_name, text in writes:
            for state in ("queued", "running", "done"):
                if f'"state": "{state}"' in text:
                    states_by_thread.setdefault(state, set()).add(
                        thread_name
                    )

        # the whole lifecycle was journaled...
        assert {"queued", "running", "done"} <= set(states_by_thread)
        # ...and once the job is in flight, never from the loop thread
        for state in ("running", "done"):
            assert "repro-service" not in states_by_thread[state], (
                f"{state} snapshot written on the event loop thread"
            )
