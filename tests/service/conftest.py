"""Shared fixtures for the service suites (differential, chaos, API).

Every test runs the daemon *in-process* on a background thread
(:class:`~repro.service.app.ServiceThread`) against the deterministic
:mod:`repro.service.testing` fakes, so the whole suite stays in the
fast tier; only the killed-daemon chaos test spawns a real
``repro serve`` subprocess.
"""

from __future__ import annotations

import contextlib

import pytest

from repro import obs
from repro.core.params import ParameterSpace
from repro.optimize.explorer import ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config
from repro.resilience import faults
from repro.resilience.supervisor import SupervisionConfig
from repro.service.app import ServiceApp, ServiceThread
from repro.service.client import ServiceClient
from repro.service.runner import encode_front
from repro.service.scheduler import SchedulerConfig
from repro.service.testing import (
    FAKE_NUM_LAYERS,
    FakeGuard,
    FakeGuardFactory,
    ObsFakeGuard,
)

#: Supervision knobs every in-process service test runs with (no real
#: backoff sleeps; short poll so retries resolve in milliseconds).
FAST_SUPERVISION = SupervisionConfig(backoff_s=0.0, poll_s=0.01)


class SlowFakeGuard(ObsFakeGuard):
    """ObsFakeGuard with a small per-evaluation sleep.

    Slow enough that a test can observe a job mid-flight (progress
    polling, cancellation, backpressure) yet fast enough for the fast
    tier.  The sleep changes *when* results arrive, never *what* they
    are, so bitwise assertions still hold against the plain FakeGuard.
    """

    eval_sleep_s = 0.004


class SlowGuardFactory(FakeGuardFactory):
    def __init__(self) -> None:
        super().__init__(guard_cls=SlowFakeGuard)


@pytest.fixture(autouse=True)
def _fault_hygiene():
    """No fault plan may leak into (or out of) any test."""
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(autouse=True)
def _obs_hygiene():
    """The app enables obs; restore the disabled default afterwards."""
    yield
    obs.disable()


@pytest.fixture()
def make_service(tmp_path):
    """Factory: ``with make_service(...) as (url, app): ...``

    Builds an in-thread daemon over a tmp state dir with the fake guard
    factory and fast supervision; yields ``(base_url, app)``.
    """

    @contextlib.contextmanager
    def factory(
        workers=2,
        queue_limit=64,
        max_job_retries=1,
        guard_factory=None,
        state_dir=None,
        resume=False,
        supervision=None,
    ):
        app = ServiceApp(
            state_dir or tmp_path / "state",
            guard_factory=guard_factory or FakeGuardFactory(),
            config=SchedulerConfig(
                workers=workers,
                queue_limit=queue_limit,
                max_job_retries=max_job_retries,
                supervision=supervision or FAST_SUPERVISION,
            ),
            resume=resume,
        )
        with ServiceThread(app) as base_url:
            yield base_url, app

    return factory


@pytest.fixture()
def client():
    """Factory for clients with a snappy poll loop."""

    def factory(base_url):
        return ServiceClient(base_url, timeout_s=30.0)

    return factory


def direct_front(seed, population=8, generations=3, guard=None):
    """Oracle: the bitwise reference front from a direct explorer run."""
    result = ParetoExplorer(
        guard or FakeGuard(),
        space=ParameterSpace(FAKE_NUM_LAYERS),
        config=NSGA2Config(
            population_size=population,
            generations=generations,
            seed=seed,
        ),
        supervision=FAST_SUPERVISION,
    ).explore()
    return encode_front(result.pareto_front)


def explore_spec(design="fakechip", seed=0, **overrides):
    """A small explore-job payload the fast tier finishes in ~100 ms."""
    spec = {
        "kind": "explore",
        "design": design,
        "seed": seed,
        "population": 8,
        "generations": 3,
    }
    spec.update(overrides)
    return spec
