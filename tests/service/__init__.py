"""Service-layer suites: differential, chaos, API, schema goldens."""
