"""HTTP API contract tests: status codes, backpressure, error surfaces.

Everything here talks to the in-thread daemon over real sockets — the
raw-request tests use :mod:`http.client` directly so malformed inputs
reach the hand-rolled parser unmassaged.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.errors import JobQueueFull, ServiceError
from repro.service.jobs import JobState

from tests.service.conftest import SlowGuardFactory, explore_spec


def _raw(url, method, path, body=None, headers=None):
    """One raw HTTP exchange; returns (status, headers, parsed body)."""
    host = url.split("//", 1)[1]
    conn = http.client.HTTPConnection(host, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read().decode()
        return resp.status, dict(resp.getheaders()), (
            json.loads(raw) if raw else None
        )
    finally:
        conn.close()


class TestHealthAndMetrics:
    def test_healthz_reports_queue_and_job_counts(
        self, make_service, client
    ):
        with make_service(workers=2, queue_limit=7) as (url, _app):
            c = client(url)
            health = c.healthz()
            assert health["status"] == "ok"
            assert health["queue"] == {"depth": 0, "limit": 7}
            assert health["workers"] == 2
            assert set(health["jobs"]) == set(JobState.ALL)
            job = c.submit(explore_spec(seed=3))
            c.wait(job["id"])
            assert c.healthz()["jobs"][JobState.DONE] == 1

    def test_metrics_exposes_service_section_and_obs_registry(
        self, make_service, client
    ):
        with make_service() as (url, _app):
            c = client(url)
            job = c.submit(explore_spec(seed=3))
            c.wait(job["id"])
            metrics = c.metrics()
        assert metrics["service"]["jobs"][JobState.DONE] == 1
        assert metrics["service"]["cache"]["entries"] > 0
        registry = metrics["metrics"]
        assert registry["service.jobs_submitted"]["value"] == 1
        assert registry["service.jobs_done"]["value"] == 1
        assert registry["fake.evals"]["value"] > 0


class TestBackpressure:
    def test_full_queue_returns_429_with_retry_after(self, make_service):
        """queue_limit pending jobs + busy workers → 429 and the
        advertised Retry-After, and the obs reject counter moves."""
        with make_service(
            workers=1, queue_limit=2, guard_factory=SlowGuardFactory()
        ) as (url, app):
            # one running + two queued fills the daemon
            accepted = [
                _raw(url, "POST", "/jobs", explore_spec(
                    seed=s, generations=6,
                ))
                for s in (3, 5, 7)
            ]
            assert [s for s, _, _ in accepted] == [201, 201, 201]
            status, headers, body = _raw(
                url, "POST", "/jobs", explore_spec(seed=9)
            )
            assert status == 429
            assert headers["Retry-After"] == "1"
            assert "queue is full" in body["error"]
            snapshot = app.scheduler.counts()
            assert snapshot[JobState.QUEUED] == 2

    def test_client_submit_surfaces_retry_after_hint(self, make_service):
        from repro.service.client import ServiceClient

        with make_service(
            workers=1, queue_limit=1, guard_factory=SlowGuardFactory()
        ) as (url, _app):
            c = ServiceClient(url)
            c.submit(explore_spec(seed=3, generations=6))
            c.submit(explore_spec(seed=5))
            with pytest.raises(JobQueueFull) as excinfo:
                c.submit(explore_spec(seed=7))
            assert excinfo.value.retry_after_s == 1.0

    def test_client_can_wait_out_backpressure(self, make_service):
        from repro.service.client import ServiceClient

        with make_service(
            workers=1, queue_limit=1, guard_factory=SlowGuardFactory()
        ) as (url, _app):
            c = ServiceClient(url)
            first = c.submit(explore_spec(seed=3, generations=2))
            second = c.submit(explore_spec(seed=5, generations=2))
            third = c.submit(
                explore_spec(seed=7, generations=2),
                honor_backpressure=True,
            )
            for job in (first, second, third):
                assert c.wait(job["id"], timeout_s=60.0)["state"] == (
                    JobState.DONE
                )


class TestErrorSurfaces:
    def test_unknown_job_is_404(self, make_service, client):
        with make_service() as (url, client_factory):
            status, _, body = _raw(url, "GET", "/jobs/job-999999")
            assert status == 404
            assert "unknown job" in body["error"]

    def test_unknown_route_is_404(self, make_service):
        with make_service() as (url, _app):
            status, _, _ = _raw(url, "GET", "/nope")
            assert status == 404

    def test_wrong_method_is_405(self, make_service):
        with make_service() as (url, _app):
            status, _, body = _raw(url, "DELETE", "/jobs")
            assert status == 405
            assert "not allowed" in body["error"]

    def test_submit_without_body_is_400(self, make_service):
        with make_service() as (url, _app):
            status, _, body = _raw(url, "POST", "/jobs")
            assert status == 400
            assert "JSON body" in body["error"]

    def test_submit_with_invalid_json_is_400(self, make_service):
        with make_service() as (url, _app):
            host = url.split("//", 1)[1]
            conn = http.client.HTTPConnection(host, timeout=30)
            try:
                conn.request("POST", "/jobs", body="{not json")
                resp = conn.getresponse()
                assert resp.status == 400
                assert "not valid JSON" in json.loads(resp.read())["error"]
            finally:
                conn.close()

    def test_submit_with_unknown_field_is_400(self, make_service):
        with make_service() as (url, _app):
            status, _, body = _raw(
                url, "POST", "/jobs", explore_spec(turbo=True)
            )
            assert status == 400
            assert "unknown job spec fields: turbo" in body["error"]

    def test_submit_with_bad_design_is_400_for_real_guard(self, tmp_path):
        from repro.service.app import ServiceApp, ServiceThread

        app = ServiceApp(tmp_path / "state")  # real DesignGuardFactory
        with ServiceThread(app) as url:
            status, _, body = _raw(
                url, "POST", "/jobs", explore_spec(design="notachip")
            )
            assert status == 400
            assert "unknown design" in body["error"]

    def test_result_before_done_is_409(self, make_service, client):
        with make_service(
            workers=1, guard_factory=SlowGuardFactory()
        ) as (url, client_factory):
            c = client(url)
            job = c.submit(explore_spec(seed=3, generations=5))
            status, _, body = _raw(
                url, "GET", f"/jobs/{job['id']}/result"
            )
            assert status == 409
            assert "no result yet" in body["error"]
            c.wait(job["id"], timeout_s=60.0)
            status, _, body = _raw(
                url, "GET", f"/jobs/{job['id']}/result"
            )
            assert status == 200

    def test_cancel_finished_job_is_409(self, make_service, client):
        with make_service() as (url, _app):
            c = client(url)
            job = c.submit(explore_spec(seed=3))
            c.wait(job["id"])
            status, _, body = _raw(url, "DELETE", f"/jobs/{job['id']}")
            assert status == 409
            assert "already done" in body["error"]

    def test_resume_from_unknown_checkpoint_is_400(
        self, make_service, client
    ):
        with make_service() as (url, _app):
            status, _, body = _raw(
                url, "POST", "/jobs",
                explore_spec(seed=3, resume_from="job-424242"),
            )
            assert status == 400
            assert "no checkpoint" in body["error"]

    def test_malformed_request_line_is_400(self, make_service):
        import socket as socketlib

        with make_service() as (url, _app):
            host, port = url.split("//", 1)[1].split(":")
            with socketlib.create_connection(
                (host, int(port)), timeout=10
            ) as sock:
                sock.sendall(b"GARBAGE\r\n\r\n")
                data = sock.recv(4096).decode()
            assert data.startswith("HTTP/1.1 400 ")

    def test_draining_daemon_rejects_submissions(
        self, make_service, client
    ):
        with make_service() as (url, app):
            c = client(url)
            app.scheduler.draining = True
            with pytest.raises(ServiceError, match="draining"):
                c.submit(explore_spec(seed=3))
            app.scheduler.draining = False
