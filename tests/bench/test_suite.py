"""Suite-level calibration tests (baseline shapes from the paper)."""

import pytest

from repro.bench.suite import baseline_metrics, baseline_security, build_suite


class TestBaselineCalibration:
    def test_present_baseline(self, present_design):
        m = baseline_metrics(present_design)
        assert m["drc"] == 0
        assert m["tns"] == 0.0
        assert m["er_sites"] > 100

    def test_misty_baseline(self, misty_design):
        m = baseline_metrics(misty_design)
        assert m["drc"] == 0
        assert m["tns"] == 0.0

    def test_baseline_security_nonzero(self, misty_design):
        s = baseline_security(misty_design)
        assert s.er_sites > 0
        assert s.er_tracks > 0

    def test_build_suite_subset(self):
        suite = build_suite(["PRESENT"])
        assert set(suite) == {"PRESENT"}

    def test_relative_sizes_follow_paper(self):
        """AES designs are the largest, openMSP430_1/PRESENT the smallest."""
        from repro.bench.designs import build_design

        small = build_design("PRESENT").netlist.num_instances
        large = build_design("AES_2").netlist.num_instances
        assert large > 4 * small
