"""Tests for the synthetic netlist generators."""

import pytest

from repro.bench.generators import GeneratorParams, generate_design
from repro.errors import BenchmarkError


class TestParams:
    def test_bad_sizes(self):
        with pytest.raises(BenchmarkError):
            GeneratorParams(n_state=2)
        with pytest.raises(BenchmarkError):
            GeneratorParams(cone_inputs=1)
        with pytest.raises(BenchmarkError):
            GeneratorParams(style="gpu")


class TestGeneratedNetlists:
    @pytest.fixture(scope="class")
    def netlist(self, library):
        return generate_design(
            "gen", library,
            GeneratorParams(n_state=16, n_key=8, cone_inputs=3,
                            cone_depth=4, n_inputs=8, n_outputs=8, seed=11),
        )

    def test_validates(self, netlist):
        netlist.validate()

    def test_register_counts(self, netlist):
        seqs = [i.name for i in netlist.sequential_instances()]
        assert sum(1 for n in seqs if n.startswith("st_")) == 16
        assert sum(1 for n in seqs if n.startswith("key_")) == 8

    def test_has_clock(self, netlist):
        assert netlist.clock_nets() == {"clk"}
        for ff in netlist.sequential_instances():
            assert ff.connections["CK"] == "clk"

    def test_asset_prefixes_present(self, netlist):
        names = set(netlist.instance_names())
        assert any(n.startswith("kctl_") for n in names)
        assert any(n.startswith("key_") for n in names)

    def test_deterministic(self, library):
        p = GeneratorParams(n_state=8, n_key=4, seed=5)
        a = generate_design("d", library, p)
        b = generate_design("d", library, p)
        assert a.instance_names() == b.instance_names()
        for inst in a.instances:
            assert b.instance(inst.name).connections == inst.connections

    def test_seed_changes_structure(self, library):
        a = generate_design(
            "d", library, GeneratorParams(n_state=8, n_key=4, seed=1)
        )
        b = generate_design(
            "d", library, GeneratorParams(n_state=8, n_key=4, seed=2)
        )
        conns_a = [i.connections for i in a.instances]
        conns_b = [i.connections for i in b.instances]
        assert conns_a != conns_b

    def test_cpu_style_has_muxes(self, library):
        nl = generate_design(
            "cpu", library,
            GeneratorParams(n_state=16, n_key=8, style="cpu", seed=4),
        )
        assert any(i.master.name == "MUX2_X1" for i in nl.instances)

    def test_size_scales_with_params(self, library):
        small = generate_design(
            "s", library, GeneratorParams(n_state=8, n_key=4, cone_depth=2, seed=1)
        )
        big = generate_design(
            "b", library,
            GeneratorParams(n_state=32, n_key=16, cone_depth=8, seed=1),
        )
        assert big.num_instances > small.num_instances * 2
