"""Tests for the 12-design benchmark suite."""

import pytest

from repro.bench.designs import DESIGN_NAMES, build_design, design_spec
from repro.bench.suite import baseline_metrics
from repro.errors import BenchmarkError


class TestSpecs:
    def test_twelve_designs(self):
        assert len(DESIGN_NAMES) == 12
        assert DESIGN_NAMES[0] == "AES_1"

    def test_unknown_design(self):
        with pytest.raises(BenchmarkError):
            design_spec("DES")

    def test_paper_tightness_classes(self):
        # Designs with negative baseline TNS in Table II are tight (<1).
        tight = ("AES_1", "AES_2", "AES_3", "CAST", "openMSP430_2", "SEED")
        loose = ("Camellia", "MISTY", "openMSP430_1", "PRESENT", "SPARX", "TDEA")
        for name in tight:
            assert design_spec(name).period_factor < 1.0
        for name in loose:
            assert design_spec(name).period_factor > 1.0


class TestBuiltDesigns:
    def test_build_cached(self):
        a = build_design("PRESENT")
        b = build_design("PRESENT")
        assert a is b

    def test_present_baseline_shape(self, present_design):
        m = baseline_metrics(present_design)
        assert m["tns"] == 0.0  # loose design meets timing
        assert m["drc"] == 0
        assert m["er_sites"] > 0
        assert 0.4 < m["utilization"] < 0.75

    def test_misty_attributes(self, misty_design):
        assert misty_design.name == "MISTY"
        assert misty_design.sta.tns == 0.0
        assert len(misty_design.assets) > 0
        misty_design.layout.validate()

    def test_fresh_layout_is_independent(self, present_design):
        fresh = present_design.fresh_layout()
        name = next(iter(fresh.placements))
        fresh.unplace(name)
        assert present_design.layout.is_placed(name)

    def test_tight_design_negative_tns(self):
        d = build_design("openMSP430_2")
        assert d.sta.tns < 0

    def test_assets_placed_as_compact_bank(self, misty_design):
        xs = [misty_design.layout.cell_center(a).x for a in misty_design.assets]
        ys = [misty_design.layout.cell_center(a).y for a in misty_design.assets]
        core = misty_design.layout.core
        assert max(xs) - min(xs) < 0.7 * core.width
        assert max(ys) - min(ys) < 0.7 * core.height
