"""Tests for the functional-filling engine."""

import pytest

from repro.defenses.fill import fill_free_space


@pytest.fixture()
def fillable(misty_design):
    layout = misty_design.layout.clone()
    layout.netlist = misty_design.netlist.copy()
    return layout


class TestFill:
    def test_fills_most_free_space(self, fillable):
        free_before = fillable.total_sites - fillable.used_sites()
        report = fill_free_space(fillable)
        fillable.validate()
        assert report.sites_filled > free_before * 0.8
        assert report.cells_added > 0

    def test_netlist_valid_after_fill(self, fillable):
        fill_free_space(fillable)
        fillable.netlist.validate()

    def test_original_netlist_untouched(self, misty_design, fillable):
        before = misty_design.netlist.signature()
        fill_free_space(fillable)
        assert misty_design.netlist.signature() == before

    def test_chains_terminate_at_ports(self, fillable):
        report = fill_free_space(fillable)
        out_ports = [
            p.name for p in fillable.netlist.ports if p.name.startswith("bisa_out")
        ]
        assert len(out_ports) >= 1
        assert report.chains >= 1

    def test_region_filter_limits_fill(self, misty_design):
        limited = misty_design.layout.clone()
        limited.netlist = misty_design.netlist.copy()
        # Only rows 0-3 are fillable.
        rep = fill_free_space(limited, region_filter=lambda row, gap: row < 4)
        for name in limited.placements:
            if name.startswith("bisa_f"):
                assert limited.placement(name).row < 4
        full = misty_design.layout.clone()
        full.netlist = misty_design.netlist.copy()
        rep_full = fill_free_space(full)
        assert rep.cells_added < rep_full.cells_added

    def test_pipeline_dffs_clocked(self, fillable):
        report = fill_free_space(fillable)
        if report.dffs_added:
            clock = next(iter(fillable.netlist.clock_nets()))
            for inst in fillable.netlist.instances:
                if inst.name.startswith("bisa_d"):
                    assert inst.connections["CK"] == clock

    def test_timing_chains_meet_loose_clock(self, fillable, misty_design):
        """The pipelined chains cannot blow up TNS at the design's clock."""
        from repro.route.router import global_route
        from repro.timing.sta import run_sta

        fill_free_space(fillable, segment_length=10)
        routing = global_route(fillable)
        sta = run_sta(fillable, misty_design.constraints, routing=routing)
        # the chains may add some negative slack, but bounded
        assert sta.tns > -30.0
