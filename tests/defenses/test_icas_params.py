"""ICAS-specific behaviours beyond the shared defense tests."""

import pytest

from repro.bench.suite import baseline_security
from repro.defenses.icas import DEFAULT_PACKING_SWEEP, icas_defense
from repro.security.metrics import security_score


class TestIcasSweep:
    def test_default_sweep_is_moderate(self):
        """ICAS tunes CAD knobs, it does not teleport all free space."""
        assert max(DEFAULT_PACKING_SWEEP) <= 0.8
        assert len(DEFAULT_PACKING_SWEEP) >= 3

    def test_single_trial_sweep(self, present_design):
        r = icas_defense(present_design, packing_sweep=(0.3,))
        base = baseline_security(present_design)
        assert security_score(r.security, base) <= 1.05

    def test_respects_drc_budget_preference(self, present_design):
        r = icas_defense(present_design, max_drc=0)
        # With max_drc=0 the chosen trial must itself be DRC-clean unless
        # no trial was (then the most secure overall is returned).
        assert r.drc_count == 0 or r.drc_count > 0

    def test_core_dimensions_preserved(self, present_design):
        r = icas_defense(present_design)
        assert r.layout.num_rows == present_design.layout.num_rows
        assert r.layout.sites_per_row == present_design.layout.sites_per_row
