"""Tests for the three baseline defenses."""

import pytest

from repro.bench.suite import baseline_security
from repro.defenses import ba_defense, bisa_defense, icas_defense
from repro.security.metrics import security_score


@pytest.fixture(scope="module")
def baseline(misty_design):
    return baseline_security(misty_design)


@pytest.fixture(scope="module")
def icas_result(misty_design):
    return icas_defense(misty_design)


@pytest.fixture(scope="module")
def bisa_result(misty_design):
    return bisa_defense(misty_design)


@pytest.fixture(scope="module")
def ba_result(misty_design):
    return ba_defense(misty_design)


class TestIcas:
    def test_improves_security(self, icas_result, baseline):
        assert security_score(icas_result.security, baseline) < 1.0

    def test_layout_legal(self, icas_result):
        icas_result.layout.validate()

    def test_netlist_not_modified(self, icas_result, misty_design):
        # ICAS only re-places; it never adds logic.
        assert (
            icas_result.layout.netlist.num_instances
            == misty_design.netlist.num_instances
        )

    def test_runtime_recorded(self, icas_result):
        assert icas_result.runtime_s > 0


class TestBisa:
    def test_near_total_coverage(self, bisa_result, baseline):
        assert security_score(bisa_result.security, baseline) < 0.10

    def test_density_near_full(self, bisa_result):
        assert bisa_result.layout.utilization() > 0.93

    def test_adds_logic(self, bisa_result, misty_design):
        assert (
            bisa_result.layout.netlist.num_instances
            > misty_design.netlist.num_instances
        )

    def test_power_overhead_largest(self, bisa_result, ba_result, icas_result):
        assert bisa_result.power > ba_result.power
        assert bisa_result.power > icas_result.power

    def test_layout_legal(self, bisa_result):
        bisa_result.layout.validate()


class TestBa:
    def test_partial_coverage_between_icas_and_bisa(
        self, ba_result, bisa_result, baseline
    ):
        ba_score = security_score(ba_result.security, baseline)
        bisa_score = security_score(bisa_result.security, baseline)
        assert bisa_score <= ba_score < 1.0

    def test_lower_overhead_than_bisa(self, ba_result, bisa_result):
        assert ba_result.power < bisa_result.power
        assert ba_result.drc_count <= bisa_result.drc_count

    def test_fills_near_assets_only(self, ba_result, misty_design):
        layout = ba_result.layout
        fills = [n for n in layout.placements if n.startswith("bisa_f")]
        assert fills
        # Every filler must be reasonably close to some asset.
        for name in fills[:50]:
            c = layout.cell_center(name)
            d = min(
                layout.cell_rect(a).manhattan_distance_to_point(c)
                for a in misty_design.assets
            )
            assert d < 40.0

    def test_layout_legal(self, ba_result):
        ba_result.layout.validate()
