"""Tests for the blockage-driven incremental ECO placer."""

import pytest

from repro.geometry import Rect
from repro.layout.blockage import PlacementBlockage
from repro.place.budget import build_budgets
from repro.place.eco_place import connected_median, eco_place


class TestConnectedMedian:
    def test_median_between_neighbors(self, small_layout):
        m = connected_median(small_layout, "inv1")
        xs = [small_layout.cell_center(f"inv{i}").x for i in (0, 1, 2)]
        assert min(xs) <= m.x <= max(xs)

    def test_unconnected_cell_none(self, library, tech):
        from repro.layout.layout import Layout
        from repro.netlist.netlist import Netlist

        nl = Netlist("solo", library)
        nl.add_instance("f", "FILLCELL_X4")
        layout = Layout(nl, tech, num_rows=1, sites_per_row=20)
        layout.place("f", 0, 0)
        assert connected_median(layout, "f") is None


class TestEcoPlace:
    def test_noop_without_blockages(self, tiny_design):
        layout = tiny_design["layout"].clone()
        report = eco_place(layout)
        assert report.num_moved == 0

    def test_resolves_over_budget_tile(self, tiny_design, tech):
        layout = tiny_design["layout"].clone()
        core = layout.core
        # Cap the left half of the core well below its current density.
        rect = Rect(0, 0, core.width / 2, core.height)
        current = layout.region_density(rect)
        layout.add_blockage(
            PlacementBlockage("cap", rect, max_density=current * 0.8)
        )
        report = eco_place(layout)
        layout.validate()
        assert report.num_moved > 0
        budgets = build_budgets(layout)
        # Budget resolved (or at least materially improved).
        b = budgets.budgets[0]
        assert b.used <= b.max_used or not report.unresolved_blockages

    def test_fixed_cells_never_move(self, tiny_design):
        layout = tiny_design["layout"].clone()
        core = layout.core
        rect = Rect(0, 0, core.width, core.height / 2)
        fixed_names = list(layout.placements)[:10]
        before = {n: layout.placement(n) for n in fixed_names}
        layout.fixed.update(fixed_names)
        layout.add_blockage(PlacementBlockage("cap", rect, max_density=0.2))
        eco_place(layout)
        for n in fixed_names:
            assert layout.placement(n) == before[n]

    def test_netlist_untouched(self, tiny_design):
        layout = tiny_design["layout"].clone()
        sig = layout.netlist.signature()
        core = layout.core
        layout.add_blockage(
            PlacementBlockage(
                "cap", Rect(0, 0, core.width / 2, core.height), max_density=0.3
            )
        )
        eco_place(layout)
        assert layout.netlist.signature() == sig

    def test_report_displacement_positive_when_moved(self, tiny_design):
        layout = tiny_design["layout"].clone()
        core = layout.core
        layout.add_blockage(
            PlacementBlockage(
                "cap", Rect(0, 0, core.width / 2, core.height), max_density=0.25
            )
        )
        report = eco_place(layout)
        if report.num_moved:
            assert report.total_displacement_um > 0
