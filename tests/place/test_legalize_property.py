"""Property-based legalizer invariants on randomized target sets.

The legalizer is load-bearing for every incremental path: the delta
engine assumes placements are always legal, so ``legalize`` must never
produce overlaps, off-grid sites, or out-of-core rows — for *any* target
cloud Hypothesis can dream up.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.geometry import Point
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist
from repro.place.legalize import legalize
from repro.tech.library import nangate45_library
from repro.tech.technology import nangate45_like

LIB = nangate45_library()
TECH = nangate45_like()

NUM_ROWS = 6
SITES_PER_ROW = 50

MASTERS = ["INV_X1", "NAND2_X1", "BUF_X1", "DFF_X1"]

targets_strategy = st.lists(
    st.tuples(
        st.floats(0.0, SITES_PER_ROW * TECH.site_width, allow_nan=False),
        st.floats(0.0, NUM_ROWS * TECH.row_height, allow_nan=False),
        st.sampled_from(MASTERS),
    ),
    min_size=1,
    max_size=25,
)


def _build(targets, pre_placed=0):
    nl = Netlist("legal_prop", LIB)
    layout = Layout(nl, TECH, num_rows=NUM_ROWS, sites_per_row=SITES_PER_ROW)
    for k in range(pre_placed):
        name = f"fix{k}"
        nl.add_instance(name, "DFF_X1")
        width = nl.instance(name).width_sites
        row = k % NUM_ROWS
        start = (k // NUM_ROWS) * (width + 2)
        if layout.occupancy[row].can_place(start, width):
            layout.place(name, row, start)
            layout.fixed.add(name)
    wanted = {}
    for k, (x, y, master) in enumerate(targets):
        name = f"m{k}"
        nl.add_instance(name, master)
        wanted[name] = Point(x, y)
    return layout, wanted


def _assert_legal(layout):
    """No overlaps, aligned to rows/sites, inside the core."""
    seen = [[] for _ in range(layout.num_rows)]
    for name, placement in layout.placements.items():
        width = layout.netlist.instance(name).width_sites
        assert 0 <= placement.row < layout.num_rows
        assert isinstance(placement.start, int)
        assert 0 <= placement.start
        assert placement.start + width <= layout.sites_per_row
        seen[placement.row].append((placement.start, placement.start + width))
    for intervals in seen:
        intervals.sort()
        for (_, prev_hi), (lo, _) in zip(intervals, intervals[1:]):
            assert lo >= prev_hi, "overlapping placements in one row"


@settings(max_examples=40, deadline=None)
@given(targets_strategy)
def test_legalize_no_overlap_and_aligned(targets):
    layout, wanted = _build(targets)
    result = legalize(layout, wanted)
    assert set(result) == set(wanted)
    assert set(wanted) <= set(layout.placements)
    _assert_legal(layout)


@settings(max_examples=40, deadline=None)
@given(targets_strategy, st.integers(1, 8))
def test_legalize_respects_fixed_obstacles(targets, pre_placed):
    layout, wanted = _build(targets, pre_placed=pre_placed)
    before = {
        name: layout.placements[name] for name in layout.fixed
    }
    legalize(layout, wanted)
    _assert_legal(layout)
    for name, placement in before.items():
        assert layout.placements[name] == placement, (
            f"legalize moved fixed cell {name!r}"
        )
