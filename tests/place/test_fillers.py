"""Filler insertion and its (non-)effect on the security metrics."""

import pytest

from repro.place.fillers import insert_fillers
from repro.security.exploitable import find_exploitable_regions


@pytest.fixture()
def fillable(misty_design):
    layout = misty_design.layout.clone()
    layout.netlist = misty_design.netlist.copy()
    return layout


class TestInsertFillers:
    def test_fills_almost_everything(self, fillable):
        free_before = fillable.total_sites - fillable.used_sites()
        report = insert_fillers(fillable)
        fillable.validate()
        assert report.sites_filled + report.sites_skipped == free_before
        assert report.sites_skipped == 0  # FILLCELL_X1 is 1 site wide
        assert fillable.utilization() == pytest.approx(1.0)

    def test_original_design_untouched(self, misty_design, fillable):
        insert_fillers(fillable)
        assert not any(
            i.is_filler for i in misty_design.netlist.instances
        )

    def test_fillers_are_placebo_for_security(self, misty_design, fillable):
        """Definition 2.2: filler sites stay exploitable — ERsites must
        not change when gaps are stuffed with fillers."""
        before = find_exploitable_regions(
            misty_design.layout, misty_design.sta, misty_design.assets
        )
        insert_fillers(fillable)
        after = find_exploitable_regions(
            fillable, misty_design.sta, misty_design.assets
        )
        assert after.er_sites == before.er_sites
        assert after.num_regions == before.num_regions

    def test_report_counts(self, fillable):
        report = insert_fillers(fillable)
        assert report.cells_added > 0
        placed_fillers = sum(
            1 for n in fillable.placements if n.startswith("filler_")
        )
        assert placed_fillers == report.cells_added
