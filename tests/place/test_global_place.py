"""Tests for the baseline global placer."""

import pytest

from repro.bench.generators import GeneratorParams, generate_design
from repro.errors import PlacementError
from repro.place.global_place import (
    GlobalPlacementSpec,
    connectivity_order,
    global_place,
    size_core,
)


@pytest.fixture(scope="module")
def gen_netlist(library):
    params = GeneratorParams(
        n_state=16, n_key=8, cone_inputs=3, cone_depth=3,
        n_inputs=8, n_outputs=8, seed=3,
    )
    return generate_design("gp", library, params)


class TestSpec:
    def test_bad_utilization(self):
        with pytest.raises(PlacementError):
            GlobalPlacementSpec(target_utilization=0.01)

    def test_bad_packing(self):
        with pytest.raises(PlacementError):
            GlobalPlacementSpec(packing=1.5)


class TestConnectivityOrder:
    def test_covers_all_functional_instances(self, gen_netlist):
        order = connectivity_order(gen_netlist)
        assert len(order) == len(set(order))
        assert set(order) == {
            i.name for i in gen_netlist.functional_instances()
        }

    def test_neighbors_are_close_in_order(self, gen_netlist):
        order = connectivity_order(gen_netlist)
        pos = {n: i for i, n in enumerate(order)}
        # Median order-distance of connected pairs should be much smaller
        # than random (which would be ~len/3).
        dists = []
        for inst in gen_netlist.functional_instances():
            for nb in gen_netlist.fanout_instances(inst.name):
                if nb in pos:
                    dists.append(abs(pos[inst.name] - pos[nb]))
        dists.sort()
        assert dists[len(dists) // 2] < len(order) / 6


class TestSizeCore:
    def test_respects_fixed_dims(self, gen_netlist, tech):
        spec = GlobalPlacementSpec(num_rows=7, sites_per_row=99)
        assert size_core(gen_netlist, tech, spec) == (7, 99)

    def test_utilization_sizing(self, gen_netlist, tech):
        spec = GlobalPlacementSpec(target_utilization=0.5)
        rows, sites = size_core(gen_netlist, tech, spec)
        cell_sites = sum(
            i.width_sites for i in gen_netlist.functional_instances()
        )
        assert rows * sites >= cell_sites / 0.5 * 0.9


class TestGlobalPlace:
    def test_all_placed_and_legal(self, gen_netlist, tech):
        layout = global_place(
            gen_netlist, tech, GlobalPlacementSpec(target_utilization=0.6, seed=1)
        )
        layout.validate()
        placed = set(layout.placements)
        assert placed == {i.name for i in gen_netlist.functional_instances()}

    def test_hits_target_utilization(self, gen_netlist, tech):
        layout = global_place(
            gen_netlist, tech, GlobalPlacementSpec(target_utilization=0.6, seed=1)
        )
        assert layout.utilization() == pytest.approx(0.6, abs=0.08)

    def test_deterministic(self, gen_netlist, tech):
        a = global_place(gen_netlist, tech, GlobalPlacementSpec(seed=5))
        b = global_place(gen_netlist, tech, GlobalPlacementSpec(seed=5))
        assert a.placements == b.placements

    def test_seed_changes_gaps(self, gen_netlist, tech):
        a = global_place(gen_netlist, tech, GlobalPlacementSpec(seed=1))
        b = global_place(gen_netlist, tech, GlobalPlacementSpec(seed=2))
        assert a.placements != b.placements

    def test_ports_positioned(self, gen_netlist, tech):
        layout = global_place(gen_netlist, tech, GlobalPlacementSpec(seed=1))
        for port in gen_netlist.ports:
            assert port.name in layout.port_positions

    def test_row_fill_balanced(self, gen_netlist, tech):
        layout = global_place(
            gen_netlist, tech, GlobalPlacementSpec(target_utilization=0.6, seed=1)
        )
        fills = [occ.used_sites() / occ.row.num_sites for occ in layout.occupancy]
        assert max(fills) - min(fills) < 0.25

    def test_core_too_small_raises(self, gen_netlist, tech):
        with pytest.raises(PlacementError):
            global_place(
                gen_netlist,
                tech,
                GlobalPlacementSpec(num_rows=2, sites_per_row=10),
            )


class TestClusteredPlacement:
    def test_cluster_forms_compact_block(self, gen_netlist, tech):
        from repro.security.assets import annotate_key_assets

        assets = annotate_key_assets(gen_netlist)
        layout = global_place(
            gen_netlist,
            tech,
            GlobalPlacementSpec(
                target_utilization=0.6, seed=1, clustered=tuple(assets)
            ),
        )
        layout.validate()
        import numpy as np

        xs = [layout.cell_center(a).x for a in assets]
        ys = [layout.cell_center(a).y for a in assets]
        core = layout.core
        # The bank's spread must be far below the core dimensions.
        assert max(xs) - min(xs) < 0.7 * core.width
        assert max(ys) - min(ys) < 0.7 * core.height

    def test_cluster_density_local(self, gen_netlist, tech):
        from repro.geometry import Rect
        from repro.security.assets import annotate_key_assets

        assets = annotate_key_assets(gen_netlist)
        layout = global_place(
            gen_netlist,
            tech,
            GlobalPlacementSpec(
                target_utilization=0.6,
                seed=1,
                clustered=tuple(assets),
                cluster_density=0.85,
            ),
        )
        xs_lo = min(layout.cell_rect(a).xlo for a in assets)
        xs_hi = max(layout.cell_rect(a).xhi for a in assets)
        ys_lo = min(layout.cell_rect(a).ylo for a in assets)
        ys_hi = max(layout.cell_rect(a).yhi for a in assets)
        block = Rect(xs_lo, ys_lo, xs_hi, ys_hi)
        assert layout.region_density(block) > 0.6
