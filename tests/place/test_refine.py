"""Tests for the optional wirelength-refinement pass."""

import pytest

from repro.geometry import half_perimeter_wirelength
from repro.place.global_place import refine_wirelength


def total_hpwl(layout):
    return sum(
        half_perimeter_wirelength(layout.net_pin_points(n.name))
        for n in layout.netlist.nets
    )


class TestRefineWirelength:
    def test_does_not_increase_wirelength_much(self, tiny_design):
        layout = tiny_design["layout"].clone()
        before = total_hpwl(layout)
        moves = refine_wirelength(layout, passes=1)
        layout.validate()
        after = total_hpwl(layout)
        assert after <= before * 1.10

    def test_fixed_cells_untouched(self, tiny_design):
        layout = tiny_design["layout"].clone()
        pinned = list(layout.placements)[:5]
        before = {n: layout.placement(n) for n in pinned}
        layout.fixed.update(pinned)
        refine_wirelength(layout, passes=1)
        for n in pinned:
            assert layout.placement(n) == before[n]

    def test_converges(self, tiny_design):
        layout = tiny_design["layout"].clone()
        refine_wirelength(layout, passes=3)
        # A subsequent pass with the same threshold should do little.
        moves = refine_wirelength(layout, passes=1)
        assert moves < len(layout.placements) * 0.5
