"""Tests for the Tetris legalizer."""

import pytest

from repro.errors import PlacementError
from repro.geometry import Point, Rect
from repro.layout.blockage import PlacementBlockage
from repro.layout.layout import Layout
from repro.place.legalize import legalize
from tests.conftest import make_inverter_chain


@pytest.fixture()
def unplaced(library, tech):
    nl = make_inverter_chain(library, length=4, name="leg")
    return Layout(nl, tech, num_rows=4, sites_per_row=40)


class TestLegalize:
    def test_places_near_targets(self, unplaced, tech):
        targets = {
            f"inv{i}": Point(i * 2.0 + 0.5, 0.7) for i in range(4)
        }
        result = legalize(unplaced, targets)
        assert set(result) == set(targets)
        unplaced.validate()
        for name, t in targets.items():
            center = unplaced.cell_center(name)
            assert center.manhattan_distance(t) < 4.0

    def test_respects_existing_obstacles(self, unplaced):
        unplaced.place("inv3", 0, 10)
        targets = {"inv0": unplaced.cell_center("inv3")}
        legalize(unplaced, targets)
        unplaced.validate()  # no overlap with inv3

    def test_respects_hard_blockage(self, unplaced, tech):
        unplaced.add_blockage(
            PlacementBlockage(
                "hard",
                Rect(0, 0, unplaced.core.width, tech.row_height),
                max_density=0.0,
            )
        )
        targets = {"inv0": Point(1.0, 0.5)}
        legalize(unplaced, targets)
        # Forced out of row 0 entirely.
        assert unplaced.placement("inv0").row != 0

    def test_impossible_placement_raises(self, library, tech):
        nl = make_inverter_chain(library, length=2, name="full")
        layout = Layout(nl, tech, num_rows=1, sites_per_row=3)
        layout.place("inv0", 0, 0)  # 2 sites of 3: nothing fits next to it?
        # remaining gap is 1 site < INV width 2
        with pytest.raises(PlacementError):
            legalize(layout, {"inv1": Point(0.0, 0.0)})

    def test_deterministic(self, library, tech):
        results = []
        for _ in range(2):
            nl = make_inverter_chain(library, length=4, name="det")
            layout = Layout(nl, tech, num_rows=4, sites_per_row=40)
            targets = {f"inv{i}": Point(3.0, 2.0) for i in range(4)}
            results.append(legalize(layout, targets))
        assert results[0] == results[1]
