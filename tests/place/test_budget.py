"""Tests for blockage budgets and the row-indexed budget set."""

import pytest

from repro.geometry import Rect
from repro.layout.blockage import PlacementBlockage
from repro.layout.layout import Layout
from repro.place.budget import BlockageBudget, build_budgets


@pytest.fixture()
def layout_with_blockage(chain_netlist, tech):
    layout = Layout(chain_netlist, tech, num_rows=4, sites_per_row=40)
    layout.place("inv0", 0, 0)
    layout.place("inv1", 0, 4)
    # Blockage over row 0, sites 0..20, cap 50 % -> max 10 sites
    layout.add_blockage(
        PlacementBlockage(
            "b",
            Rect(0, 0, 20 * tech.site_width, tech.row_height),
            max_density=0.5,
        )
    )
    return layout


class TestBlockageBudget:
    def test_initial_accounting(self, layout_with_blockage):
        b = BlockageBudget(
            layout_with_blockage, layout_with_blockage.blockages["b"]
        )
        assert b.capacity == 20
        assert b.max_used == 10
        assert b.used == 4  # two INV_X1
        assert not b.over_budget

    def test_allows_inside_and_outside(self, layout_with_blockage):
        b = BlockageBudget(
            layout_with_blockage, layout_with_blockage.blockages["b"]
        )
        assert b.allows(0, 10, 4)  # 4+4 <= 10
        assert not b.allows(0, 10, 8)  # 4+8 > 10
        assert b.allows(0, 30, 8)  # outside blockage columns
        assert b.allows(2, 5, 8)  # other row

    def test_over_budget_does_not_veto_elsewhere(self, layout_with_blockage):
        b = BlockageBudget(
            layout_with_blockage, layout_with_blockage.blockages["b"]
        )
        b.commit(0, 6, 10)  # now 14 > 10: over budget
        assert b.over_budget
        assert b.allows(1, 0, 4)  # non-overlapping placement still fine
        assert not b.allows(0, 10, 2)

    def test_commit_release_symmetry(self, layout_with_blockage):
        b = BlockageBudget(
            layout_with_blockage, layout_with_blockage.blockages["b"]
        )
        before = b.used
        b.commit(0, 10, 4)
        b.release(0, 10, 4)
        assert b.used == before

    def test_partial_overlap_counted(self, layout_with_blockage):
        b = BlockageBudget(
            layout_with_blockage, layout_with_blockage.blockages["b"]
        )
        before = b.used
        b.commit(0, 18, 6)  # only sites 18,19 inside
        assert b.used == before + 2


class TestBudgetSet:
    def test_row_bucketing(self, layout_with_blockage):
        budgets = build_budgets(layout_with_blockage)
        assert len(budgets) == 1
        assert budgets.row_budgets(0)
        assert budgets.row_budgets(2) == []

    def test_set_allows_and_commit(self, layout_with_blockage):
        budgets = build_budgets(layout_with_blockage)
        assert budgets.allows(0, 10, 4)
        budgets.commit(0, 10, 4)
        assert not budgets.allows(0, 14, 4)
        budgets.release(0, 10, 4)
        assert budgets.allows(0, 14, 4)

    def test_over_budget_listing(self, layout_with_blockage):
        budgets = build_budgets(layout_with_blockage)
        assert budgets.over_budget() == []
        budgets.commit(0, 6, 12)
        assert len(budgets.over_budget()) == 1
