"""Tests for the density map."""

import pytest

from repro.errors import PlacementError
from repro.place.density import DensityMap


class TestDensityMap:
    def test_bad_bins(self, small_layout):
        with pytest.raises(PlacementError):
            DensityMap(small_layout, 0, 4)

    def test_total_mass_conserved(self, small_layout):
        dm = DensityMap(small_layout, 4, 4)
        arr = dm.as_array()
        core_area = small_layout.core.area
        cell_area = sum(
            small_layout.cell_rect(n).area for n in small_layout.placements
        )
        assert arr.mean() * core_area == pytest.approx(cell_area, rel=1e-6)

    def test_bins_above(self, small_layout):
        dm = DensityMap(small_layout, 4, 4)
        hot = dm.bins_above(0.0)
        assert hot  # some bins contain cells
        assert dm.bins_above(1.1) == []

    def test_max_density_bounded(self, tiny_design):
        dm = DensityMap(tiny_design["layout"], 8, 8)
        assert 0.0 < dm.max_density() <= 1.0 + 1e-9

    def test_bin_rect_tiles_core(self, small_layout):
        dm = DensityMap(small_layout, 4, 4)
        total = sum(
            dm.bin_rect(ix, iy).area for ix in range(4) for iy in range(4)
        )
        assert total == pytest.approx(small_layout.core.area)

    def test_empty_region_zero(self, chain_netlist, tech):
        from repro.layout.layout import Layout

        layout = Layout(chain_netlist, tech, num_rows=4, sites_per_row=40)
        dm = DensityMap(layout, 2, 2)
        assert dm.max_density() == 0.0
