"""Tests for the DRC checker."""

import pytest

from repro.drc.checker import DrcReport, DrcViolation, check_drc
from repro.geometry import Rect
from repro.layout.blockage import PlacementBlockage


class TestReport:
    def test_counts(self):
        rep = DrcReport(
            violations=[
                DrcViolation("placement", "x"),
                DrcViolation("congestion", "y"),
                DrcViolation("congestion", "z"),
            ]
        )
        assert rep.count == 3
        assert rep.count_of("congestion") == 2
        assert rep.count_of("pin_access") == 0


class TestPlacementChecks:
    def test_clean_layout_no_placement_violations(self, tiny_design):
        rep = check_drc(tiny_design["layout"])
        assert rep.count_of("placement") == 0

    def test_hard_blockage_violation_detected(self, tiny_design):
        layout = tiny_design["layout"].clone()
        name = next(iter(layout.placements))
        rect = layout.cell_rect(name)
        layout.add_blockage(PlacementBlockage("hard", rect, max_density=0.0))
        rep = check_drc(layout)
        assert rep.count_of("placement") >= 1

    def test_partial_blockage_not_a_violation(self, tiny_design):
        layout = tiny_design["layout"].clone()
        layout.add_blockage(
            PlacementBlockage("soft", layout.core, max_density=0.1)
        )
        rep = check_drc(layout)
        assert rep.count_of("placement") == 0

    def test_overlap_detected(self, small_layout):
        # Forge an overlap directly in the occupancy structure.
        occ = small_layout.occupancy[0]
        occ._starts.append(5)
        from repro.layout.rows import RowPlacement

        occ._items.append(RowPlacement(name="ghost", start=5, width=4))
        rep = check_drc(small_layout)
        assert rep.count_of("placement") >= 1


class TestCongestionChecks:
    def test_clean_routing_no_congestion(self, tiny_design):
        rep = check_drc(tiny_design["layout"], tiny_design["routing"])
        assert rep.count_of("congestion") == 0

    def test_forced_overflow_detected(self, tiny_design):
        import copy

        routing = tiny_design["routing"]
        saved = routing.grid.usage.copy()
        try:
            routing.grid.usage[2, 0, 0] = routing.grid.capacity[2, 0, 0] * 3 + 20
            rep = check_drc(tiny_design["layout"], routing)
            assert rep.count_of("congestion") == 1
        finally:
            routing.grid.usage[:] = saved

    def test_mild_overflow_absorbed(self, tiny_design):
        routing = tiny_design["routing"]
        saved = routing.grid.usage.copy()
        try:
            routing.grid.usage[2, 0, 0] = routing.grid.capacity[2, 0, 0] + 1.0
            rep = check_drc(tiny_design["layout"], routing)
            assert rep.count_of("congestion") == 0
        finally:
            routing.grid.usage[:] = saved

    def test_baseline_suite_calibration(self, present_design):
        rep = check_drc(present_design.layout, present_design.routing)
        assert rep.count == 0
