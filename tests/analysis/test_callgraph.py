"""Unit tests for the model / call-graph / effect-propagation layers.

These pin the analyzer's *infrastructure* semantics on small synthetic
modules: edge resolution, argument-binding translation, the optimistic
unresolved-call policy, closure type inheritance, ambient masking, and
the async-callee blocking mask.
"""

from repro.analysis.callgraph import build_facts
from repro.analysis.effects import Effect, effect_path, propagate
from repro.analysis.model import Project, SourceModule

AMBIENT = frozenset({"repro.obs"})


def project_of(*sources):
    return Project([SourceModule(*s) for s in sources])


def analyzed(code, name="m", relpath="src/repro/m.py",
             ambient=frozenset()):
    project = project_of((name, relpath, code))
    facts = build_facts(project)
    return facts, propagate(facts, ambient)


class TestCallGraph:
    def test_module_level_call_edge(self):
        facts, _ = analyzed(
            "def g(x):\n    return x\n\ndef f(y):\n    return g(y)\n"
        )
        (cs,) = facts["m.f"].calls
        assert cs.callee == "m.g"
        assert cs.bindings == {"x": ("param", "y")}

    def test_method_edge_through_self_attribute_type(self):
        code = """\
class Store:
    def save(self, item):
        item.append(1)

class App:
    def __init__(self, store: Store) -> None:
        self.store = store

    def run(self, items):
        self.store.save(items)
"""
        facts, effects = analyzed(code)
        (cs,) = facts["m.App.run"].calls
        assert cs.callee == "m.Store.save"
        # mutates_arg(item) translates through the binding to the
        # caller's own parameter
        assert Effect("mutates_arg", "items") in effects["m.App.run"]

    def test_unresolved_calls_are_assumed_effect_free(self):
        facts, effects = analyzed(
            "import somelib\n\ndef f(x):\n    return somelib.go(x)\n"
        )
        assert facts["m.f"].calls == []
        assert effects["m.f"] == {}

    def test_caller_local_mutation_does_not_propagate(self):
        code = """\
def fill(bucket):
    bucket.append(1)

def f():
    local = []
    fill(local)
    return local
"""
        _, effects = analyzed(code)
        assert Effect("mutates_arg", "bucket") in effects["m.fill"]
        assert effects["m.f"] == {}  # local object: not an f effect

    def test_global_binding_translates_to_mutates_global(self):
        code = """\
_REGISTRY = []

def fill(bucket):
    bucket.append(1)

def f():
    fill(_REGISTRY)
"""
        _, effects = analyzed(code)
        assert Effect("mutates_global", "m._REGISTRY") in effects["m.f"]


class TestClosureEnvironment:
    def test_nested_function_inherits_enclosing_local_types(self):
        code = """\
import threading

def outer():
    lock = threading.Lock()

    def inner():
        with lock:
            pass

    return inner
"""
        facts, _ = analyzed(code)
        inner = facts["m.outer.<locals>.inner"]
        assert inner.local_types["lock"] == "lock"
        assert Effect("lock", "") in inner.intrinsics

    def test_nested_function_inherits_captured_self_class(self):
        code = """\
import asyncio

class App:
    def cb(self):
        return 1

    async def run(self):
        loop = asyncio.get_running_loop()

        def kick():
            loop.call_soon_threadsafe(self.cb)

        kick()
"""
        facts, _ = analyzed(code)
        kick = facts["m.App.run.<locals>.kick"]
        # `loop` kept its event_loop tag and `self.cb` resolved, so the
        # nested registration is visible to the ASY rules
        (reg,) = kick.loop_callbacks
        assert reg.callback == "m.App.cb"
        assert reg.api == "call_soon_threadsafe"


class TestPropagation:
    def test_effects_reach_callers_transitively(self):
        code = """\
def leaf(path):
    open(path)

def mid(path):
    leaf(path)

def top(path):
    mid(path)
"""
        _, effects = analyzed(code)
        assert Effect("io", "open") in effects["m.top"]
        path = effect_path("m.top", Effect("io", "open"), effects)
        assert path == "top -> m.mid -> m.leaf"

    def test_ambient_module_effects_do_not_cross(self):
        obs_code = "def count(name):\n    open(name)\n"
        app_code = (
            "from repro.obs import count\n\n"
            "def f(x):\n    count(x)\n    return x\n"
        )
        project = project_of(
            ("repro.obs", "src/repro/obs/__init__.py", obs_code),
            ("m", "src/repro/m.py", app_code),
        )
        facts = build_facts(project)
        effects = propagate(facts, AMBIENT)
        assert Effect("io", "open") in effects["repro.obs.count"]
        assert effects["m.f"] == {}

    def test_async_callee_blocking_is_not_a_caller_effect(self):
        code = """\
import time

async def job():
    time.sleep(1)

def kick(loop):
    loop.create_task(job())
"""
        _, effects = analyzed(code)
        assert Effect("blocking", "time.sleep") in effects["m.job"]
        # building the coroutine does not block the sync caller
        assert not any(
            e.kind == "blocking" for e in effects["m.kick"]
        )

    def test_to_thread_binds_args_past_the_callable(self):
        code = """\
import asyncio

def fill(bucket):
    bucket.append(1)

async def handler(items):
    await asyncio.to_thread(fill, items)
"""
        _, effects = analyzed(code)
        assert Effect("mutates_arg", "items") in effects["m.handler"]

    def test_off_loop_edge_masks_blocking_but_keeps_io(self):
        code = """\
import asyncio

def work(path):
    open(path)

async def handler(path):
    await asyncio.to_thread(work, path)
"""
        _, effects = analyzed(code)
        kinds = {e.kind for e in effects["m.handler"]}
        assert "io" in kinds and "blocking" not in kinds
