"""Engine-level tests: pragmas, baseline ratchet, rule selection, the
HEAD self-check, and the ``repro analyze`` CLI surface."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_sources, analyze_tree
from repro.analysis.baseline import (
    BASELINE_SCHEMA_VERSION,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import select_rules
from repro.analysis.model import SourceModule
from repro.errors import ReproError

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
RATCHET = REPO_ROOT / "tools" / "analysis_ratchet.json"

ASY_DEFECT = SourceModule(
    name="repro.service.fake",
    relpath="src/repro/service/fake.py",
    source="import time\n\nasync def handler():\n    time.sleep(1)\n",
)


class TestSelectRules:
    def test_default_is_the_whole_catalogue(self):
        assert select_rules(None) == sorted(
            ["EFF101", "EFF102", "EFF103",
             "ASY101", "ASY102", "FRK101", "FRK102"]
        )

    def test_family_prefix_expands(self):
        assert select_rules(["ASY"]) == ["ASY101", "ASY102"]
        assert select_rules(["eff101"]) == ["EFF101"]

    def test_unknown_selector_raises_repro_error(self):
        with pytest.raises(ReproError, match="unknown analysis rule"):
            select_rules(["DET999"])


class TestPragmas:
    def test_pragma_on_the_finding_line_suppresses(self):
        code = (
            "import time\n\n"
            "async def handler():\n"
            "    time.sleep(1)  # repro-lint: disable=ASY101 "
            "documented pause\n"
        )
        report = analyze_sources([ASY_DEFECT._replace(source=code)])
        assert report.findings == []

    def test_pragma_for_another_rule_does_not_suppress(self):
        code = (
            "import time\n\n"
            "async def handler():\n"
            "    time.sleep(1)  # repro-lint: disable=ASY102\n"
        )
        report = analyze_sources([ASY_DEFECT._replace(source=code)])
        assert [f.rule_id for f in report.findings] == ["ASY101"]


class TestBaseline:
    def test_baselined_findings_are_silenced_but_counted(self):
        live = analyze_sources([ASY_DEFECT])
        (finding,) = live.findings
        report = analyze_sources(
            [ASY_DEFECT], baseline_keys=[finding.key()]
        )
        assert report.findings == []
        assert [f.key() for f in report.baselined] == [finding.key()]
        assert report.exit_code("warning") == 0

    def test_stale_key_fails_the_run(self):
        report = analyze_sources(
            [ASY_DEFECT],
            baseline_keys=["EFF101:gone.fn:mutates_arg:x"],
        )
        assert report.stale_baseline == ["EFF101:gone.fn:mutates_arg:x"]
        assert report.exit_code("error") == 1  # ratchet only goes down

    def test_roundtrip_write_and_load(self, tmp_path):
        live = analyze_sources([ASY_DEFECT])
        path = tmp_path / "ratchet.json"
        write_baseline(path, live.findings)
        keys = load_baseline(path)
        assert keys == [live.findings[0].key()]
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == BASELINE_SCHEMA_VERSION

    def test_missing_file_is_empty_and_malformed_raises(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(ReproError, match="malformed"):
            load_baseline(bad)

    def test_syntax_error_in_tree_raises(self):
        broken = SourceModule("m", "src/repro/m.py", "def broken(:\n")
        with pytest.raises(ReproError, match="cannot parse"):
            analyze_sources([broken])


class TestHeadSelfCheck:
    """The acceptance criterion: HEAD analyzes clean with an *empty*
    shipped baseline — every finding was fixed or pragma-justified."""

    def test_shipped_baseline_is_empty(self):
        assert load_baseline(RATCHET) == []

    def test_tree_is_clean_at_fail_on_warning(self):
        report = analyze_tree(REPO_ROOT, baseline=RATCHET)
        assert report.findings == [], "\n".join(
            f.format() for f in report.findings
        )
        assert report.stale_baseline == []
        assert report.exit_code("warning") == 0
        # sanity: the run actually covered the tree
        assert report.modules > 100 and report.functions > 500


class TestCli:
    def run_cli(self, *args):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro", "analyze", *args],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        )

    def test_head_gate_exits_zero(self):
        proc = self.run_cli("--fail-on", "warning")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "analysis clean" in proc.stdout

    def test_json_artifact_written(self, tmp_path):
        out = tmp_path / "report.json"
        proc = self.run_cli("--rules", "ASY", "--format", "json",
                            "--out", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(out.read_text())
        assert payload["rules_run"] == ["ASY101", "ASY102"]
        assert payload["counts"]["total"] == 0

    def test_list_rules_prints_catalogue(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("EFF101", "ASY102", "FRK101"):
            assert rule_id in proc.stdout

    def test_unknown_rule_is_an_actionable_error(self):
        proc = self.run_cli("--rules", "NOPE")
        assert proc.returncode == 2
        assert "unknown analysis rule" in proc.stderr
