"""Rule-mutation suite for the effect & concurrency analyzer.

Each rule id has (at least) one minimal synthetic module that MUST
trigger it, paired with a "clean twin" — the same scenario written the
sanctioned way — that MUST stay silent.  Together they pin both halves
of every rule: it fires on the defect and it does not fire on the fix.
"""

import pytest

from repro.analysis import RULES, Severity, analyze_sources
from repro.analysis.contracts import Contract, ContractRegistry
from repro.analysis.model import SourceModule

#: Purity contract used by the EFF fixtures: every ``pure_*`` function
#: in the synthetic ``app`` module is declared pure.
PURE_REGISTRY = ContractRegistry(
    contracts=[Contract(pattern="app.pure_*", reason="unit-test purity")]
)

SERVICE = dict(name="repro.service.fake",
               relpath="src/repro/service/fake.py")


def findings_of(code, name="app", relpath="src/repro/app.py",
                registry=PURE_REGISTRY, rules=None):
    report = analyze_sources(
        [SourceModule(name=name, relpath=relpath, source=code)],
        registry=registry,
        rules=rules,
    )
    return report.findings


def rule_ids(code, **kw):
    return sorted({f.rule_id for f in findings_of(code, **kw)})


# ----------------------------------------------------------------- #
# EFF — purity contracts
# ----------------------------------------------------------------- #

EFF101_TRIGGER = """\
def pure_scale(values, k):
    values.append(k)
    return values
"""

EFF101_CLEAN = """\
def pure_scale(values, k):
    out = list(values)
    out.append(k)
    return out
"""

EFF102_TRIGGER = """\
def _log(path, msg):
    with open(path, "a") as fh:
        fh.write(msg)

def pure_cost(x, path):
    _log(path, "x")
    return x * 2
"""

EFF102_CLEAN = """\
def _log(path, msg):
    with open(path, "a") as fh:
        fh.write(msg)

def pure_cost(x, path):
    return x * 2
"""

EFF103_TRIGGER = """\
import numpy as np

def pure_jitter(x):
    rng = np.random.default_rng()
    return x + rng.normal()
"""

#: The sanctioned fix: randomness is a parameter from the caller.
EFF103_CLEAN = """\
import numpy as np

def pure_jitter(x, rng):
    return x + rng.normal()
"""

#: A *seeded* generator owned locally is also observationally pure.
EFF103_CLEAN_SEEDED = """\
import numpy as np

def pure_jitter(x):
    rng = np.random.default_rng(7)
    return x + rng.normal()
"""


class TestEffRules:
    def test_eff101_fires_on_argument_mutation(self):
        (f,) = findings_of(EFF101_TRIGGER)
        assert f.rule_id == "EFF101"
        assert f.severity is Severity.ERROR
        assert f.qualname == "app.pure_scale"
        assert f.detail == "mutates_arg:values"
        assert f.line == 2

    def test_eff101_clean_twin_copies_first(self):
        assert findings_of(EFF101_CLEAN) == []

    def test_eff102_fires_through_transitive_callee(self):
        found = findings_of(EFF102_TRIGGER)
        assert found and {f.rule_id for f in found} == {"EFF102"}
        # anchored at the call edge in the pure function, and the
        # message names the path through the impure helper
        assert all(f.qualname == "app.pure_cost" for f in found)
        assert any("_log" in f.message for f in found)

    def test_eff102_clean_twin_keeps_helper_impure(self):
        # the helper itself is impure but carries no contract
        assert findings_of(EFF102_CLEAN) == []

    def test_eff103_fires_on_seedless_owned_rng(self):
        (f,) = findings_of(EFF103_TRIGGER)
        assert f.rule_id == "EFF103"
        assert "default_rng() without a seed" in f.detail

    @pytest.mark.parametrize(
        "code", [EFF103_CLEAN, EFF103_CLEAN_SEEDED],
        ids=["rng-parameter", "seeded-local"],
    )
    def test_eff103_clean_twins(self, code):
        assert findings_of(code) == []

    def test_contract_scope_only_covers_declared_functions(self):
        # same mutation outside the contracted name pattern: silent
        code = "def helper_scale(values, k):\n    values.append(k)\n"
        assert findings_of(code) == []


# ----------------------------------------------------------------- #
# ASY — event-loop safety (repro.service only)
# ----------------------------------------------------------------- #

ASY101_DIRECT = """\
import time

async def handler():
    time.sleep(1)
"""

ASY101_EDGE = """\
import time

def work():
    time.sleep(1)

async def handler():
    work()
"""

ASY101_CLEAN = """\
import asyncio
import time

def work():
    time.sleep(1)

async def handler():
    await asyncio.to_thread(work)
"""

ASY102_TRIGGER = """\
async def step():
    return 1

async def handler():
    step()
"""

ASY102_CLEAN = """\
async def step():
    return 1

async def handler():
    await step()
"""


class TestAsyRules:
    def test_asy101_fires_on_direct_blocking_primitive(self):
        (f,) = findings_of(ASY101_DIRECT, **SERVICE)
        assert f.rule_id == "ASY101"
        assert f.line == 4  # the time.sleep itself

    def test_asy101_fires_at_first_sync_edge(self):
        (f,) = findings_of(ASY101_EDGE, **SERVICE)
        assert f.rule_id == "ASY101"
        assert f.line == 7  # the work() call site, not inside work
        assert "work" in f.message

    def test_asy101_clean_twin_offloads_via_to_thread(self):
        assert findings_of(ASY101_CLEAN, **SERVICE) == []

    def test_asy_rules_scope_is_repro_service(self):
        # the identical code outside repro.service is not an ASY root
        assert findings_of(ASY101_DIRECT) == []

    def test_asy102_fires_on_dropped_coroutine(self):
        (f,) = findings_of(ASY102_TRIGGER, **SERVICE)
        assert f.rule_id == "ASY102"
        assert f.line == 5
        assert "step" in f.message

    def test_asy102_clean_twin_awaits(self):
        assert findings_of(ASY102_CLEAN, **SERVICE) == []


# ----------------------------------------------------------------- #
# FRK — fork safety
# ----------------------------------------------------------------- #

FRK101_TRIGGER = """\
import threading
import multiprocessing

def launch():
    lock = threading.Lock()

    def worker():
        with lock:
            pass

    p = multiprocessing.Process(target=worker)
    p.start()
"""

FRK101_CLEAN = """\
import threading
import multiprocessing

def launch():
    lock = threading.Lock()

    def worker(lk):
        with lk:
            pass

    p = multiprocessing.Process(target=worker, args=(lock,))
    p.start()
"""

FRK102_TRIGGER = """\
import multiprocessing

_COUNTER = 0

def _bump():
    global _COUNTER
    _COUNTER += 1

def launch():
    p = multiprocessing.Process(target=_bump)
    p.start()
"""

FRK102_CLEAN = """\
import multiprocessing

def _bump(n):
    return n + 1

def launch():
    p = multiprocessing.Process(target=_bump, args=(1,))
    p.start()
"""


class TestFrkRules:
    def test_frk101_fires_on_captured_lock(self):
        (f,) = findings_of(FRK101_TRIGGER)
        assert f.rule_id == "FRK101"
        assert f.severity is Severity.ERROR
        assert "lock" in f.message and "worker" in f.message

    def test_frk101_clean_twin_passes_through_args(self):
        assert findings_of(FRK101_CLEAN) == []

    def test_frk102_warns_on_worker_reachable_global_mutation(self):
        (f,) = findings_of(FRK102_TRIGGER)
        assert f.rule_id == "FRK102"
        assert f.severity is Severity.WARNING
        assert f.qualname == "app._bump"
        assert "_COUNTER" in f.message

    def test_frk102_clean_twin_is_value_passing(self):
        assert findings_of(FRK102_CLEAN) == []

    def test_frk102_silent_without_worker_dispatch(self):
        # the same global mutation never dispatched to a worker
        code = (
            "_COUNTER = 0\n\n"
            "def _bump():\n"
            "    global _COUNTER\n"
            "    _COUNTER += 1\n"
        )
        assert findings_of(code) == []


# ----------------------------------------------------------------- #
# catalogue invariants
# ----------------------------------------------------------------- #


class TestCatalogue:
    def test_every_rule_id_has_spec_fields(self):
        assert set(RULES) == {
            "EFF101", "EFF102", "EFF103",
            "ASY101", "ASY102", "FRK101", "FRK102",
        }
        for rule_id, spec in RULES.items():
            assert spec.rule_id == rule_id
            assert spec.summary and spec.hint

    def test_rule_selection_restricts_output(self):
        # EFF-only run over an ASY defect: silent
        assert findings_of(ASY101_DIRECT, rules=["EFF"], **SERVICE) == []
        assert rule_ids(ASY101_DIRECT, rules=["ASY"], **SERVICE) == [
            "ASY101"
        ]
