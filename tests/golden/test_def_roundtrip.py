"""Golden + fixed-point regression tests for the DEF serializer.

Two complementary guarantees:

* **Fixed point** — ``parse(serialize(L))`` re-serializes to the exact
  same text, for layouts exercising every DEF construct (components,
  FIXED cells, blockages, pins).
* **Golden file** — the serialized form of a deterministic fixture is
  pinned verbatim, so accidental format drift (which would break saved
  user artifacts) fails loudly.  Refresh with ``pytest --update-goldens``.
"""

from __future__ import annotations

import pytest

from repro.geometry import Rect
from repro.layout.blockage import PlacementBlockage
from repro.layout.def_io import layout_from_def, layout_to_def


@pytest.fixture()
def decorated_layout(tiny_design):
    """The tiny design's layout with a blockage and a fixed asset added."""
    layout = tiny_design["layout"].clone()
    assets = sorted(tiny_design["assets"])
    for name in assets[:3]:
        if layout.is_placed(name):
            layout.fixed.add(name)
    layout.add_blockage(
        PlacementBlockage(
            name="keepout0",
            rect=Rect(1.0, 1.0, 9.5, 6.25),
            max_density=0.25,
        )
    )
    return layout


class TestDefRoundTrip:
    def test_serialize_parse_is_fixed_point(self, decorated_layout, tech):
        layout = decorated_layout
        text1 = layout_to_def(layout)
        parsed = layout_from_def(text1, layout.netlist, tech)
        text2 = layout_to_def(parsed)
        assert text1 == text2

    def test_round_trip_preserves_placement_state(
        self, decorated_layout, tech
    ):
        layout = decorated_layout
        parsed = layout_from_def(layout_to_def(layout), layout.netlist, tech)
        assert parsed.placements == layout.placements
        assert parsed.fixed == layout.fixed
        assert set(parsed.blockages) == set(layout.blockages)
        assert parsed.port_positions == layout.port_positions

    def test_def_matches_golden(self, decorated_layout, golden):
        golden("tiny_layout.def", layout_to_def(decorated_layout))
