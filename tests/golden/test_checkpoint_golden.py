"""Golden-file pin of the exploration checkpoint format.

The checked-in ``checkpoint_tiny.json`` freezes schema version 1; any
change to the on-disk layout shows up as a readable JSON diff and forces
a deliberate refresh (``pytest --update-goldens``) plus a schema-version
bump decision.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.params import FlowConfig
from repro.errors import CheckpointError
from repro.optimize.nsga2 import Individual
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointManager,
    ExplorationCheckpoint,
)

GOLDEN = Path(__file__).parent / "data" / "checkpoint_tiny.json"


def tiny_checkpoint() -> ExplorationCheckpoint:
    """A fully deterministic synthetic checkpoint (no RNG, no time)."""

    def individual(op, n, it, scales, objectives, violation, rank, crowding):
        ind = Individual(
            genome=FlowConfig(op, n, it, scales),
            objectives=objectives,
            violation=violation,
        )
        ind.rank = rank
        ind.crowding = crowding
        return ind

    population = [
        individual("CS", 2, 1, (1.0, 1.0, 1.0), (0.25, -0.5), 0.0, 0,
                   float("inf")),
        individual("LDA", 16, 2, (1.0, 1.2, 1.5), (0.125, -0.25), 0.0, 0,
                   0.75),
        individual("CS", 32, 2, (1.5, 1.5, 1.5), (0.0625, -0.125), 1.5, 1,
                   float("inf")),
    ]
    return ExplorationCheckpoint(
        generation=1,
        population=population,
        history=[
            [((0.25, -0.5), 0.0), ((0.125, -0.25), 0.0)],
            [((0.0625, -0.125), 1.5)],
        ],
        rng_state={
            "bit_generator": "PCG64",
            "state": {"state": 42, "inc": 7},
            "has_uint32": 0,
            "uinteger": 0,
        },
        eval_cache={
            ("CS", 2, 1, (1.0, 1.0, 1.0)): ((0.25, -0.5), 0.0),
            ("LDA", 16, 2, (1.0, 1.2, 1.5)): ((0.125, -0.25), 0.0),
        },
        evaluations=3,
        cache_requests=5,
        cache_hits=2,
        stall=0,
        best_proxy=-0.375,
        nsga2={
            "population_size": 3,
            "generations": 2,
            "crossover_rate": 0.9,
            "mutation_rate": 0.2,
            "stall_generations": 8,
            "seed": 9,
        },
        num_layers=3,
    )


class TestCheckpointGolden:
    def test_format_matches_golden(self, tmp_path, golden):
        manager = CheckpointManager(tmp_path)
        tiny_checkpoint().save(manager)
        golden("checkpoint_tiny.json", manager.path.read_text())

    def test_golden_file_declares_current_schema_version(self):
        payload = json.loads(GOLDEN.read_text())
        assert payload["schema_version"] == CHECKPOINT_SCHEMA_VERSION
        assert payload["kind"] == "exploration"

    def test_golden_round_trips_to_a_fixed_point(self, tmp_path):
        """load(golden) → save must reproduce the golden bytes exactly."""
        manager = CheckpointManager(tmp_path)
        manager.path.write_text(GOLDEN.read_text())
        ExplorationCheckpoint.load(manager).save(manager)
        assert manager.path.read_bytes() == GOLDEN.read_bytes()

    def test_bumped_version_golden_is_rejected(self, tmp_path):
        payload = json.loads(GOLDEN.read_text())
        payload["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        manager = CheckpointManager(tmp_path)
        manager.path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError) as err:
            ExplorationCheckpoint.load(manager)
        message = str(err.value)
        assert f"version {CHECKPOINT_SCHEMA_VERSION + 1}" in message
        assert "restart without --resume" in message
