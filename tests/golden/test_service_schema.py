"""Golden schema tests for the service API payloads.

These pin the *shape* of every payload the daemon serves — field names,
nesting, and JSON types — not the values: each leaf is normalized to its
type name, lists collapse to their element shape, and the obs registry
subtree (whose keys move with instrumentation) is opaque.  A field
rename or type change breaks the golden; refresh intentionally with
``pytest --update-goldens``.
"""

from __future__ import annotations

import json

import pytest

from repro.service.jobs import JobState

from tests.service.conftest import explore_spec


def shape(value, opaque=()):
    """Recursive type-name skeleton of a JSON payload.

    ``opaque`` lists dotted key-paths whose subtree is replaced with a
    marker instead of being recursed into.
    """

    def walk(node, path):
        if path in opaque:
            return "<opaque>"
        if isinstance(node, dict):
            return {k: walk(v, f"{path}.{k}" if path else k)
                    for k, v in sorted(node.items())}
        if isinstance(node, list):
            return [walk(node[0], f"{path}[]")] if node else []
        if isinstance(node, bool):
            return "bool"
        if isinstance(node, int):
            return "int"
        if isinstance(node, float):
            return "float"
        if isinstance(node, str):
            return "str"
        if node is None:
            return "null"
        return type(node).__name__  # pragma: no cover - no other JSON type

    return walk(value, "")


def render(payload, opaque=()):
    return json.dumps(shape(payload, opaque), indent=2, sort_keys=True) + "\n"


@pytest.fixture(scope="module")
def served_payloads(tmp_path_factory):
    """One daemon round-trip shared by every schema test in the module."""
    import contextlib

    from repro import obs
    from repro.service.app import ServiceApp, ServiceThread
    from repro.service.client import ServiceClient
    from repro.service.scheduler import SchedulerConfig
    from repro.service.testing import FakeGuardFactory

    from tests.service.conftest import FAST_SUPERVISION

    with contextlib.ExitStack() as stack:
        app = ServiceApp(
            tmp_path_factory.mktemp("service-golden") / "state",
            guard_factory=FakeGuardFactory(),
            config=SchedulerConfig(
                workers=1, supervision=FAST_SUPERVISION
            ),
        )
        url = stack.enter_context(ServiceThread(app))
        stack.callback(obs.disable)
        c = ServiceClient(url)
        explore = c.submit(explore_spec(seed=3))
        c.wait(explore["id"])
        harden = c.submit({"kind": "harden", "design": "fakechip"})
        c.wait(harden["id"])
        yield {
            "healthz": c.healthz(),
            "metrics": c.metrics(),
            "job": c.job(explore["id"]),
            "jobs": c.jobs(),
            "result_explore": c.result(explore["id"]),
            "result_harden": c.result(harden["id"]),
        }


class TestServiceSchemas:
    def test_healthz_schema(self, served_payloads, golden):
        golden(
            "service_healthz.json", render(served_payloads["healthz"])
        )

    def test_metrics_schema(self, served_payloads, golden):
        # the obs registry's keys move with instrumentation — opaque
        golden(
            "service_metrics.json",
            render(served_payloads["metrics"], opaque=("metrics",)),
        )

    def test_job_record_schema(self, served_payloads, golden):
        assert served_payloads["job"]["state"] == JobState.DONE
        golden("service_job.json", render(served_payloads["job"]))

    def test_job_summary_schema(self, served_payloads, golden):
        golden(
            "service_job_summary.json",
            render(served_payloads["jobs"][0]),
        )

    def test_explore_result_schema(self, served_payloads, golden):
        golden(
            "service_result_explore.json",
            render(served_payloads["result_explore"]),
        )

    def test_harden_result_schema(self, served_payloads, golden):
        golden(
            "service_result_harden.json",
            render(served_payloads["result_harden"]),
        )
