"""Golden fixtures for the red-team attack payloads.

Three pins:

* the :class:`~repro.security.trojan.AttackReport` payload shape,
* the full canonical campaign-summary JSON of a fake-tier campaign
  (bitwise — this is the document the differential suite compares, so
  any drift in float formatting, key order, or aggregation shows here),
* (slow) the reduced success-rate table of a real PRESENT quick
  campaign, asserting the hardened layout is never easier to attack
  than the baseline on any grid spec.

Refresh intentionally with ``pytest --update-goldens``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.redteam import AttackCampaign, AttackGrid, AttackSpecPoint
from repro.security.trojan import AttackReport
from repro.service.testing import FakeAttackSurface

from tests.golden.test_service_schema import render
from tests.redteam.conftest import FAST_SUPERVISION


def test_attack_report_payload_golden(golden):
    report = AttackReport(
        success=True,
        reason="trojan gates placed and tap corridor routable",
        region_sites=24,
        gates_placed=6,
        tap_length_um=12.5,
        region_distance_um=12.5,
        placements=(("NAND2_X1", 3, 17), ("INV_X1", 3, 20)),
        victim="key_reg_0",
    )
    payload = dataclasses.asdict(report)
    golden(
        "attack_report.json",
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )


@pytest.fixture()
def fake_campaign_summary():
    grid = AttackGrid(
        "test",
        (
            AttackSpecPoint("a2-er20-first", "a2"),
            AttackSpecPoint(
                "lean-er12-random", "lean", thresh_er=12,
                strategy="random_fit",
            ),
        ),
    )
    return AttackCampaign(
        [
            ("baseline", FakeAttackSurface("baseline", resistance=0.25)),
            ("hardened", FakeAttackSurface("hardened", resistance=0.6)),
        ],
        grid,
        attempts=3,
        seed=7,
        supervision=FAST_SUPERVISION,
    ).run()


def test_campaign_summary_golden(golden, fake_campaign_summary):
    """Bitwise pin of the canonical summary document."""
    golden("campaign_summary.json", fake_campaign_summary.to_json())


def test_campaign_summary_schema_golden(golden, fake_campaign_summary):
    """Type-skeleton pin: field names and JSON types, values erased."""
    golden(
        "campaign_summary_schema.json",
        render(fake_campaign_summary.summary()),
    )


@pytest.mark.slow
def test_present_quick_campaign_rates_golden(golden, present_design):
    """Hardened PRESENT resists at least as well as baseline, per spec."""
    from repro.core.flow import GDSIIGuard
    from repro.core.params import FlowConfig
    from repro.redteam import LayoutAttackSurface
    from repro.timing.sta import run_sta

    d = present_design
    baseline = LayoutAttackSurface(
        "baseline", d.layout, d.sta, d.assets,
        routing=d.routing, constraints=d.constraints,
        measure_impact=False,
    )
    guard = GDSIIGuard(
        d.layout, d.constraints, d.assets, baseline_routing=d.routing
    )
    scales = (1.0,) * d.technology.num_layers
    hardened_flow = guard.run(FlowConfig("CS", 2, 1, scales))
    hardened = LayoutAttackSurface(
        "hardened",
        hardened_flow.layout,
        run_sta(hardened_flow.layout, d.constraints,
                routing=hardened_flow.routing),
        d.assets,
        routing=hardened_flow.routing,
        constraints=d.constraints,
        measure_impact=False,
    )
    result = AttackCampaign(
        [("baseline", baseline), ("hardened", hardened)],
        AttackGrid.preset("quick"),
        attempts=2,
        seed=0,
        supervision=FAST_SUPERVISION,
    ).run()

    rates = {}
    for row in result.rows():
        rates.setdefault(row["target"], {})[row["spec_id"]] = [
            row["successes"], row["attempts"], row["first_success_attempt"]
        ]
    for spec_id, (successes, _, _) in rates["hardened"].items():
        assert successes <= rates["baseline"][spec_id][0], (
            f"hardened PRESENT is easier to attack than baseline on "
            f"{spec_id}"
        )
    golden(
        "present_attack_rates.json",
        json.dumps(rates, indent=2, sort_keys=True) + "\n",
    )
