"""Golden regression test for the markdown security report.

The report is the reviewer-facing signoff artifact; its numbers come
from the whole analysis stack (STA, exploitable scan, ICAS metrics,
power, DRC, Trojan attack), so pinning the rendered text on a
deterministic fixture is a cheap end-to-end regression net.  Refresh
with ``pytest --update-goldens`` after an intentional change.
"""

from __future__ import annotations

from repro.reporting.security_report import security_report


class TestSecurityReportGolden:
    def test_report_matches_golden(self, tiny_design, golden):
        d = tiny_design
        report = security_report(
            "tiny baseline",
            d["layout"],
            d["sta"],
            d["assets"],
            d["constraints"],
            routing=d["routing"],
        )
        golden("security_report_tiny.md", report)

    def test_report_is_deterministic(self, tiny_design):
        d = tiny_design
        args = (
            "tiny baseline",
            d["layout"],
            d["sta"],
            d["assets"],
            d["constraints"],
        )
        first = security_report(*args, routing=d["routing"])
        second = security_report(*args, routing=d["routing"])
        assert first == second
