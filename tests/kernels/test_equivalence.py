"""Property tests: vectorized kernels == scalar reference oracles.

The ``repro.kernels`` package promises *bitwise* equality with the scalar
implementations it replaces (selected via ``REPRO_KERNELS=scalar``).
These tests drive both paths on generated designs and randomized inputs
and compare every observable output exactly — no tolerances:

* STA: arrival/required times, endpoint slacks, TNS/WNS;
* exploitable-site scanning: the distance-filtered intervals per row and
  the resulting region sets;
* legalizer start search and the ECO receiving-target choice;
* routing-grid accounting: usage arrays, congestion probes, overflow.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.bench.generators import GeneratorParams, generate_design
from repro.geometry import Rect
from repro.place.budget import build_budgets
from repro.place.global_place import GlobalPlacementSpec, global_place
from repro.route.ndr import NonDefaultRule
from repro.route.router import global_route
from repro.security.assets import annotate_key_assets
from repro.security.exploitable import (
    _filtered_row_intervals,
    find_exploitable_regions,
)
from repro.tech.library import nangate45_library
from repro.tech.technology import nangate45_like
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import run_sta

#: Independent generator seeds, matching the differential harness.
DESIGN_SEEDS = (7, 19, 31)

THRESH_ER = 5
CLOCK_PERIOD = 0.9


def _build(seed: int):
    library = nangate45_library()
    tech = nangate45_like(num_layers=10)
    params = GeneratorParams(
        n_state=12, n_key=8, cone_inputs=3, cone_depth=3,
        n_inputs=8, n_outputs=8, seed=seed,
    )
    netlist = generate_design(f"kern{seed}", library, params)
    assets = annotate_key_assets(netlist)
    layout = global_place(
        netlist,
        tech,
        GlobalPlacementSpec(
            target_utilization=0.6, seed=seed, clustered=tuple(assets)
        ),
    )
    return {
        "netlist": netlist,
        "tech": tech,
        "layout": layout,
        "assets": assets,
        "constraints": TimingConstraints(clock_period=CLOCK_PERIOD),
    }


@pytest.fixture(scope="module", params=DESIGN_SEEDS)
def design(request):
    return _build(request.param)


@pytest.fixture(scope="module")
def one_design():
    """One design carrying a deterministic mix of soft/hard blockages.

    ``build_budgets`` only sees blockages registered on the layout (the
    LDA stage normally adds them), so the fixture plants a grid of its
    own: soft density caps for the receiving-target/headroom paths plus a
    couple of hard keep-outs for the forbidden-start masking.
    """
    from repro.layout.blockage import PlacementBlockage

    d = _build(DESIGN_SEEDS[0])
    layout = d["layout"]
    core = layout.core
    w = (core.xhi - core.xlo) / 4.0
    h = (core.yhi - core.ylo) / 3.0
    idx = 0
    for i in range(4):
        for j in range(3):
            density = 0.0 if (i + j) % 4 == 0 else 0.5 + 0.1 * ((i + j) % 3)
            layout.add_blockage(
                PlacementBlockage(
                    name=f"kernblk{idx}",
                    rect=Rect(
                        core.xlo + i * w,
                        core.ylo + j * h,
                        core.xlo + (i + 1) * w,
                        core.ylo + (j + 1) * h,
                    ),
                    max_density=density,
                )
            )
            idx += 1
    return d


@pytest.fixture()
def mode(monkeypatch):
    """Callable that pins the kernel mode for the current test."""

    def set_mode(name: str) -> None:
        monkeypatch.setenv(kernels.KERNELS_ENV, name)

    return set_mode


def _sta_key(sta):
    return (
        sorted(sta.arrival.items()),
        sorted(sta.required.items()),
        sorted((e.kind, e.name, e.arrival, e.required) for e in sta.endpoints),
        sta.tns,
        sta.wns,
    )


def _security_key(report):
    return sorted(
        (
            tuple(sorted((g.row, g.lo, g.hi) for g in r.component.gaps)),
            r.free_tracks,
            r.num_sites,
        )
        for r in report.regions
    )


# ---------------------------------------------------------------------- #
# STA
# ---------------------------------------------------------------------- #


def test_sta_estimate_path_bitwise_equal(design, mode):
    mode("scalar")
    scalar = run_sta(design["layout"], design["constraints"])
    mode("vector")
    vector = run_sta(design["layout"], design["constraints"])
    assert _sta_key(scalar) == _sta_key(vector)


def test_sta_routed_path_bitwise_equal(design, mode):
    mode("vector")
    routing = global_route(design["layout"])
    mode("scalar")
    scalar = run_sta(design["layout"], design["constraints"], routing=routing)
    mode("vector")
    vector = run_sta(design["layout"], design["constraints"], routing=routing)
    assert _sta_key(scalar) == _sta_key(vector)


# ---------------------------------------------------------------------- #
# exploitable-site scanning
# ---------------------------------------------------------------------- #


def test_exploitable_report_equal(design, mode):
    mode("scalar")
    sta = run_sta(design["layout"], design["constraints"])
    scalar = find_exploitable_regions(
        design["layout"], sta, design["assets"], thresh_er=THRESH_ER
    )
    mode("vector")
    vector = find_exploitable_regions(
        design["layout"], sta, design["assets"], thresh_er=THRESH_ER
    )
    assert _security_key(scalar) == _security_key(vector)
    assert scalar.distances == vector.distances


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_filtered_row_intervals_equal(one_design, mode, data):
    """Random (rect, distance) asset lists filter identically per row."""
    layout = one_design["layout"]
    core_w = layout.sites_per_row * layout.technology.site_width
    core_h = layout.num_rows * layout.technology.row_height
    n = data.draw(st.integers(min_value=0, max_value=4), label="n_assets")
    rects = []
    for i in range(n):
        x = data.draw(
            st.floats(0.0, core_w, allow_nan=False), label=f"x{i}"
        )
        y = data.draw(
            st.floats(0.0, core_h, allow_nan=False), label=f"y{i}"
        )
        w = data.draw(st.floats(0.1, 10.0, allow_nan=False), label=f"w{i}")
        h = data.draw(st.floats(0.1, 5.0, allow_nan=False), label=f"h{i}")
        dist = data.draw(
            st.floats(-1.0, 30.0, allow_nan=False), label=f"d{i}"
        )
        rects.append((Rect(x, y, x + w, y + h), dist))
    row = data.draw(
        st.integers(min_value=0, max_value=layout.num_rows - 1), label="row"
    )
    mode("scalar")
    scalar = _filtered_row_intervals(layout, rects, row)
    mode("vector")
    vector = _filtered_row_intervals(layout, rects, row)
    assert [(iv.lo, iv.hi) for iv in scalar] == [
        (iv.lo, iv.hi) for iv in vector
    ]


# ---------------------------------------------------------------------- #
# legalizer start search + receiving target
# ---------------------------------------------------------------------- #


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_best_start_in_row_equal(one_design, mode, data):
    from repro.place.legalize import _best_start_in_row

    layout = one_design["layout"]
    budgets = build_budgets(layout)
    row = data.draw(
        st.integers(min_value=0, max_value=layout.num_rows - 1), label="row"
    )
    target = data.draw(
        st.integers(min_value=-5, max_value=layout.sites_per_row + 5),
        label="target",
    )
    width = data.draw(st.integers(min_value=1, max_value=30), label="width")
    mode("scalar")
    scalar = _best_start_in_row(layout, budgets, row, target, width)
    mode("vector")
    vector = _best_start_in_row(layout, budgets, row, target, width)
    assert scalar == vector


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_receiving_target_equal(one_design, mode, data):
    from repro.geometry import Point
    from repro.place.eco_place import _receiving_target

    layout = one_design["layout"]
    budgets = build_budgets(layout)
    if not budgets.budgets:
        pytest.skip("design carries no placement blockages")
    movable = [
        i.name
        for i in one_design["netlist"].instances
        if layout.is_placed(i.name) and i.name not in layout.fixed
    ]
    name = movable[
        data.draw(
            st.integers(min_value=0, max_value=len(movable) - 1),
            label="cell",
        )
    ]
    source = budgets.budgets[
        data.draw(
            st.integers(min_value=0, max_value=len(budgets.budgets) - 1),
            label="source",
        )
    ]
    width = data.draw(st.integers(min_value=1, max_value=20), label="width")
    median_pt = Point(
        data.draw(st.floats(0.0, 60.0, allow_nan=False), label="mx"),
        data.draw(st.floats(0.0, 30.0, allow_nan=False), label="my"),
    )
    attract = None
    if data.draw(st.booleans(), label="attract?"):
        attract = Point(
            data.draw(st.floats(0.0, 60.0, allow_nan=False), label="ax"),
            data.draw(st.floats(0.0, 30.0, allow_nan=False), label="ay"),
        )
    mode("scalar")
    scalar = _receiving_target(
        layout, budgets, source, name, width, median_pt, attract
    )
    mode("vector")
    vector = _receiving_target(
        layout, budgets, source, name, width, median_pt, attract
    )
    assert (scalar.x, scalar.y) == (vector.x, vector.y)


# ---------------------------------------------------------------------- #
# routing grid accounting
# ---------------------------------------------------------------------- #


def _twin_grids(design, mode):
    from repro.route.grid import RoutingGrid

    core = design["layout"].core
    mode("scalar")
    scalar = RoutingGrid(design["tech"], core)
    mode("vector")
    vector = RoutingGrid(design["tech"], core)
    return scalar, vector


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_grid_accounting_equal(one_design, mode, data):
    """Random straight segments: usage and probes agree bitwise."""
    scalar, vector = _twin_grids(one_design, mode)
    k = one_design["tech"].num_layers
    n_ops = data.draw(st.integers(min_value=1, max_value=12), label="ops")
    applied = []
    for i in range(n_ops):
        layer = data.draw(
            st.integers(min_value=1, max_value=k), label=f"layer{i}"
        )
        horizontal = data.draw(st.booleans(), label=f"horiz{i}")
        if horizontal:
            fixed = data.draw(
                st.integers(0, scalar.ny - 1), label=f"fy{i}"
            )
            a = data.draw(st.integers(0, scalar.nx - 1), label=f"a{i}")
            b = data.draw(st.integers(0, scalar.nx - 1), label=f"b{i}")
            lo, hi = min(a, b), max(a, b)
            cells = [(ix, fixed) for ix in range(lo, hi + 1)]
        else:
            fixed = data.draw(
                st.integers(0, scalar.nx - 1), label=f"fx{i}"
            )
            a = data.draw(st.integers(0, scalar.ny - 1), label=f"a{i}")
            b = data.draw(st.integers(0, scalar.ny - 1), label=f"b{i}")
            lo, hi = min(a, b), max(a, b)
            cells = [(fixed, iy) for iy in range(lo, hi + 1)]
        demand = data.draw(
            st.floats(0.1, 3.0, allow_nan=False), label=f"demand{i}"
        )
        probe = scalar.segment_congestion(layer, cells, demand)
        assert probe == vector.segment_congestion(layer, cells, demand)
        scalar.add_segment(layer, cells, demand)
        vector.add_segment(layer, cells, demand)
        applied.append((layer, cells, demand))
    assert scalar.usage.tobytes() == vector.usage.tobytes()
    assert scalar.num_overflows() == vector.num_overflows()
    assert scalar.total_overflow() == vector.total_overflow()
    for layer, cells, demand in applied:
        scalar.remove_segment(layer, cells, demand)
        vector.remove_segment(layer, cells, demand)
    assert scalar.usage.tobytes() == vector.usage.tobytes()


def test_global_route_equal(design, mode):
    """Full router runs agree: routes, usage, overflow, congestion."""

    def digest(routing):
        routes = {
            name: [
                (s.layer, tuple(s.gcells), s.length_um, s.demand)
                for s in r.segments
            ]
            for name, r in routing.routes.items()
        }
        return (
            routes,
            routing.grid.usage.tobytes(),
            routing.grid.num_overflows(),
            routing.grid.total_overflow(),
            routing.total_wirelength,
        )

    ndr = NonDefaultRule(
        scales=tuple(
            1.2 if i % 2 else 1.0
            for i in range(design["tech"].num_layers)
        )
    )
    mode("scalar")
    scalar = global_route(design["layout"], ndr=ndr)
    mode("vector")
    vector = global_route(design["layout"], ndr=ndr)
    assert digest(scalar) == digest(vector)
