"""Tests for the command-line interface (fast paths only)."""

import pytest

from repro.cli import _parse_scales, build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["designs"])
        assert args.command == "designs"
        args = parser.parse_args(["harden", "PRESENT", "--op", "LDA"])
        assert args.op == "LDA"
        args = parser.parse_args(["attack", "PRESENT", "--hardened"])
        assert args.hardened
        args = parser.parse_args(
            ["profile", "PRESENT", "--population", "4", "--trace", "t.jsonl"]
        )
        assert args.command == "profile"
        assert args.population == 4
        assert args.trace == "t.jsonl"

    def test_unknown_design_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["baseline", "DES"])

    def test_attack_campaign_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["attack", "PRESENT", "--grid", "ci", "--attempts", "2",
             "--seed", "9", "--processes", "3", "--resume",
             "--gate-hardened"]
        )
        assert args.grid == "ci"
        assert args.attempts == 2
        assert args.seed == 9
        assert args.processes == 3
        assert args.resume
        assert args.gate_hardened
        # legacy single-shot mode: no campaign flag set
        args = parser.parse_args(["attack", "PRESENT"])
        assert args.grid is None and args.attempts is None
        assert args.front is None

    def test_submit_attack_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["submit", "PRESENT", "--kind", "attack",
             "--attempts", "6", "--grid", "default"]
        )
        assert args.kind == "attack"
        assert args.attempts == 6
        assert args.grid == "default"


class TestScales:
    def test_single_value_broadcast(self):
        assert _parse_scales("1.2", 10) == tuple([1.2] * 10)

    def test_full_vector(self):
        raw = ",".join(["1.0"] * 9 + ["1.5"])
        scales = _parse_scales(raw, 10)
        assert scales[-1] == 1.5

    def test_wrong_length_rejected(self):
        with pytest.raises(SystemExit):
            _parse_scales("1.0,1.2", 10)

    def test_invalid_value_rejected(self):
        with pytest.raises(SystemExit):
            _parse_scales("1.3", 10)


class TestCommands:
    def test_baseline_command(self, capsys):
        assert main(["baseline", "PRESENT"]) == 0
        out = capsys.readouterr().out
        assert "tns" in out

    def test_harden_command_with_export(self, tmp_path, capsys):
        rc = main(
            ["harden", "PRESENT", "--op", "CS", "--rws", "1.0",
             "--out", str(tmp_path / "exp")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "security score" in out
        assert (tmp_path / "exp" / "PRESENT.gds").exists()
        assert (tmp_path / "exp" / "PRESENT.def").exists()
        assert (tmp_path / "exp" / "PRESENT.v").exists()

    def test_signoff_command(self, capsys):
        assert main(["signoff", "PRESENT"]) == 0
        out = capsys.readouterr().out
        assert "worst corner" in out

    def test_report_command(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "PRESENT", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# Security report" in text
        assert "Exploitable regions" in text
        assert "Trojan insertion attempt" in text

    def test_attack_command_baseline_succeeds(self, capsys):
        rc = main(["attack", "PRESENT"])
        out = capsys.readouterr().out
        assert rc == 1  # attacker breached the unprotected layout
        assert "SUCCESS" in out

    def test_attack_campaign_command(self, tmp_path, capsys):
        import json

        out = tmp_path / "summary.json"
        rc = main(
            ["attack", "PRESENT", "--grid", "ci", "--attempts", "2",
             "--seed", "3", "--json", str(out)]
        )
        assert rc == 0  # campaign mode reports rates; no breach exit code
        printed = capsys.readouterr().out
        assert "Attack campaign — PRESENT" in printed
        assert "baseline" in printed
        payload = json.loads(out.read_text())
        assert payload["kind"] == "redteam-campaign"
        assert payload["targets"] == ["baseline"]
        assert sorted(r["spec_id"] for r in payload["results"]) == [
            "a2-er20-first", "lean-er12-first",
        ]

    def test_attack_gate_needs_hardened_target(self, tmp_path):
        with pytest.raises(SystemExit, match="hardened target"):
            main(
                ["attack", "PRESENT", "--grid", "ci", "--attempts", "1",
                 "--gate-hardened"]
            )

    def test_profile_command(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        trace = tmp_path / "trace.jsonl"
        metrics_json = tmp_path / "metrics.json"
        rc = main(
            ["profile", "PRESENT", "--population", "4", "--generations", "1",
             "--seed", "3", "--trace", str(trace), "--json", str(metrics_json)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # the per-stage table with wall time, peak RSS, and call counts
        assert "Stage profile — PRESENT" in out
        assert "flow.place_op" in out
        assert "peak RSS MB" in out
        assert "memo hit rate" in out
        # the JSONL trace exists and nests flow spans under the explorer
        from repro import obs

        events = obs.read_trace(trace)
        begins = [e for e in events if e["ev"] == "begin"]
        assert any(e["name"] == "explorer.explore" for e in begins)
        assert any(
            e["name"] == "flow.run" and e["depth"] >= 2 for e in begins
        )
        import json

        payload = json.loads(metrics_json.read_text())
        assert payload["meta"]["design"] == "PRESENT"
        assert payload["metrics"]["flow.run.calls"]["value"] >= 1
