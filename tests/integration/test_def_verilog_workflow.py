"""Full persistence workflow: Verilog + DEF round-trip of a hardened design.

The handoff a downstream user needs: harden a layout, write netlist and
layout to disk, read both back, and verify the security metrics survive
the round trip bit-for-bit.
"""

import pytest

from repro.core.cell_shift import cell_shift
from repro.layout.def_io import layout_from_def, layout_to_def
from repro.netlist.verilog import read_structural_verilog, write_structural_verilog
from repro.route.router import global_route
from repro.security.metrics import measure_security
from repro.timing.sta import run_sta


def test_hardened_layout_round_trip(present_design, tmp_path, library, tech):
    d = present_design
    hardened = d.layout.clone()
    cell_shift(hardened, thresh_er=20)

    v_path = tmp_path / "design.v"
    def_path = tmp_path / "design.def"
    v_path.write_text(write_structural_verilog(d.netlist))
    def_path.write_text(layout_to_def(hardened))

    netlist2 = read_structural_verilog(v_path.read_text(), library)
    layout2 = layout_from_def(def_path.read_text(), netlist2, tech)
    layout2.validate()

    # Same placements, same security outcome after re-route + re-time.
    assert layout2.placements == hardened.placements
    routing1 = global_route(hardened)
    routing2 = global_route(layout2)
    sta1 = run_sta(hardened, d.constraints, routing=routing1)
    sta2 = run_sta(layout2, d.constraints, routing=routing2)
    assert sta2.tns == pytest.approx(sta1.tns)
    sec1 = measure_security(hardened, sta1, d.assets, routing=routing1)
    from repro.security.assets import annotate_key_assets

    assets2 = annotate_key_assets(netlist2)
    sec2 = measure_security(layout2, sta2, assets2, routing=routing2)
    assert sec2.er_sites == sec1.er_sites
    assert sec2.er_tracks == pytest.approx(sec1.er_tracks)
