"""The Fig.-3 toy scenario as a regression test."""

import numpy as np

from repro.core.cell_shift import cell_shift
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist


def test_fig3_toy_regions_erased(library, tech):
    netlist = Netlist("fig3", library)
    layout = Layout(netlist, tech, num_rows=6, sites_per_row=48)
    rng = np.random.default_rng(3)
    masters = ["DFF_X1", "NAND2_X1", "AND2_X1", "XOR2_X1", "INV_X1",
               "NAND2_X1", "BUF_X1"]
    k = 0
    for row in range(6):
        cursor = int(rng.integers(0, 4))
        while True:
            master = masters[int(rng.integers(len(masters)))]
            width = library.cell(master).width_sites
            if cursor + width > 48:
                break
            netlist.add_instance(f"u{k}", master)
            layout.place(f"u{k}", row, cursor)
            k += 1
            cursor += width + int(rng.integers(2, 8))

    before = layout.gap_graph().exploitable_components(20)
    assert len(before) >= 2  # the toy starts vulnerable
    cell_shift(layout, thresh_er=20)
    after = layout.gap_graph().exploitable_components(20)
    assert after == []  # Fig. 3's outcome: regions erased
    layout.validate()
