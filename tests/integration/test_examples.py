"""Smoke tests: the example scripts run end to end.

The examples default to mid-size designs; these tests run their logic on
the smallest design to keep CI fast, exercising the same code paths.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = ROOT / "examples"


def _env_with_src() -> dict:
    """Subprocess env with the repo's ``src`` on PYTHONPATH.

    The parent process may rely on a cwd-relative ``PYTHONPATH=src`` (or an
    editable install); child processes launched with a different cwd need
    the absolute path spelled out.
    """
    env = os.environ.copy()
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    return env


@pytest.mark.slow
def test_defense_comparison_example_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "defense_comparison.py"), "PRESENT"],
        capture_output=True,
        text=True,
        timeout=600,
        env=_env_with_src(),
    )
    assert proc.returncode == 0, proc.stderr
    assert "GDSII-Guard" in proc.stdout


@pytest.mark.slow
def test_attack_evaluation_example_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "attack_evaluation.py"), "PRESENT"],
        capture_output=True,
        text=True,
        timeout=600,
        env=_env_with_src(),
    )
    assert proc.returncode == 0, proc.stderr
    assert "attacking the unprotected" in proc.stdout


@pytest.mark.slow
def test_harden_custom_design_example_runs(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "harden_custom_design.py")],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,
        env=_env_with_src(),
    )
    assert proc.returncode == 0, proc.stderr
    assert (tmp_path / "my_core_hardened" / "my_core_hardened.def").exists()
