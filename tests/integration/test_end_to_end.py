"""End-to-end integration: full flow on a real benchmark design."""

import pytest

from repro.core.flow import GDSIIGuard
from repro.core.params import FlowConfig
from repro.optimize.explorer import ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config
from repro.security.trojan import attempt_insertion


class TestFullPipeline:
    @pytest.mark.slow
    def test_paper_problem_formulation(self, misty_design):
        """Inputs L_base + assets + SDC -> Pareto-optimal L_opt set."""
        d = misty_design
        guard = GDSIIGuard(
            d.layout, d.constraints, d.assets, baseline_routing=d.routing
        )
        explorer = ParetoExplorer(
            guard, config=NSGA2Config(population_size=6, generations=2, seed=0)
        )
        result = explorer.explore()
        assert result.pareto_front

        # A Pareto pick satisfies the hard constraints and improves security.
        pick = result.knee_point()
        flow_result = explorer.rerun(pick.genome)
        assert flow_result.drc_count <= guard.n_drc
        assert flow_result.power <= guard.beta_power * guard.baseline_power
        assert flow_result.score < 1.0

    def test_hardening_defeats_attacker(self, misty_design):
        """The paper's premise, executable: baseline attackable, L_opt not."""
        d = misty_design
        baseline_attack = attempt_insertion(
            d.layout, d.sta, d.assets, routing=d.routing
        )
        assert baseline_attack.success

        guard = GDSIIGuard(
            d.layout, d.constraints, d.assets, baseline_routing=d.routing
        )
        result = guard.run(
            FlowConfig("CS", 2, 1, tuple([1.2] * 10))
        )
        from repro.timing.sta import run_sta

        hardened_sta = run_sta(
            result.layout, d.constraints, routing=result.routing
        )
        hardened_attack = attempt_insertion(
            result.layout, hardened_sta, d.assets, routing=result.routing
        )
        assert not hardened_attack.success

    def test_flow_beats_every_single_operator_dimension(self, present_design):
        """The combined flow (CS+RWS) must dominate doing nothing."""
        d = present_design
        guard = GDSIIGuard(
            d.layout, d.constraints, d.assets, baseline_routing=d.routing
        )
        result = guard.run(FlowConfig("CS", 2, 1, tuple([1.0] * 10)))
        assert result.score < 0.7
        assert result.security.er_sites < guard.baseline_security.er_sites


class TestCrossDefenseShapes:
    """The qualitative Fig-4/Table-II orderings on one design."""

    @pytest.fixture(scope="class")
    def all_results(self, misty_design):
        from repro.bench.suite import baseline_security
        from repro.defenses import ba_defense, bisa_defense, icas_defense

        d = misty_design
        guard = GDSIIGuard(
            d.layout, d.constraints, d.assets, baseline_routing=d.routing
        )
        gg = guard.run(FlowConfig("CS", 2, 1, tuple([1.2] * 10)))
        return {
            "baseline": baseline_security(d),
            "icas": icas_defense(d),
            "bisa": bisa_defense(d),
            "ba": ba_defense(d),
            "guard": gg,
        }

    def test_guard_matches_or_beats_bisa_security(self, all_results):
        from repro.security.metrics import security_score

        base = all_results["baseline"]
        gg = security_score(all_results["guard"].security, base)
        bisa = security_score(all_results["bisa"].security, base)
        assert gg <= bisa + 0.05

    def test_guard_cheapest_power_among_fillers(self, all_results):
        assert all_results["guard"].power < all_results["bisa"].power
        assert all_results["guard"].power < all_results["ba"].power

    def test_bisa_worst_drc(self, all_results):
        assert all_results["bisa"].drc_count >= all_results["guard"].drc_count
