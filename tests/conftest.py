"""Shared fixtures: technology, library, small netlists and layouts."""

from __future__ import annotations

import os
import random
from pathlib import Path

import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.bench.designs import build_design
from repro.bench.generators import GeneratorParams, generate_design
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist, PortDirection
from repro.place.global_place import GlobalPlacementSpec, global_place
from repro.route.router import global_route
from repro.security.assets import annotate_key_assets
from repro.tech.library import nangate45_library
from repro.tech.technology import nangate45_like
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import run_sta

# ---------------------------------------------------------------------------
# Hypothesis profiles: pick with HYPOTHESIS_PROFILE=ci|dev|thorough.
#   ci       — small example budget, deterministic derandomized runs.
#   dev      — the default: per-test example counts as written.
#   thorough — 10x examples for release-gating property sweeps.
# ---------------------------------------------------------------------------
hypothesis_settings.register_profile(
    "ci",
    max_examples=25,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.register_profile("dev", deadline=None)
hypothesis_settings.register_profile(
    "thorough",
    max_examples=1000,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden files under tests/golden/data from the "
        "current outputs instead of asserting against them",
    )


GOLDEN_DIR = Path(__file__).parent / "golden" / "data"


@pytest.fixture()
def golden(request):
    """Compare text against a checked-in golden file.

    ``pytest --update-goldens`` regenerates the files (and skips the
    comparison so a refresh run is clearly marked in the output).
    """
    update = request.config.getoption("--update-goldens")

    def check(filename: str, actual: str) -> None:
        path = GOLDEN_DIR / filename
        if update:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic replace so parallel (pytest-xdist) refresh runs can
            # never interleave partial writes into a shared golden file.
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            tmp.write_text(actual)
            os.replace(tmp, path)
            pytest.skip(f"golden file {filename} regenerated")
        assert path.exists(), (
            f"golden file {filename} missing — run pytest --update-goldens"
        )
        expected = path.read_text()
        assert actual == expected, (
            f"output diverged from golden {filename}; if the change is "
            "intentional, refresh with pytest --update-goldens"
        )

    return check


class SessionRng(random.Random):
    """Session-wide seeded RNG with order-independent child streams.

    Consuming the shared stream directly couples a test's randomness to
    every test that ran before it; ``child(name)`` instead derives a
    fresh ``random.Random`` from ``(base_seed, name)`` so each consumer
    is deterministic regardless of collection order or ``-k`` filters.
    """

    def __init__(self, base_seed: int) -> None:
        super().__init__(base_seed)
        self.base_seed = base_seed

    def child(self, name: str) -> random.Random:
        """A deterministic per-consumer RNG, independent of call order."""
        return random.Random(f"{self.base_seed}:{name}")


@pytest.fixture(scope="session")
def session_rng():
    """Session-scoped seeded RNG for tests that need randomness.

    Seeded from ``REPRO_TEST_SEED`` (default 1234) so a full-suite run is
    reproducible; export a different value to shake out seed-dependent
    assumptions.  Prefer ``session_rng.child("<test name>")`` over the
    shared stream — children are independent of execution order, which
    also makes them safe under pytest-xdist: every worker process seeds
    an identical base RNG, and child streams don't depend on which
    worker ran which test.
    """
    return SessionRng(int(os.environ.get("REPRO_TEST_SEED", "1234")))


@pytest.fixture(scope="session")
def tech():
    """The default 10-layer Nangate-45nm-like technology."""
    return nangate45_like(num_layers=10)


@pytest.fixture(scope="session")
def library():
    """The default standard-cell library."""
    return nangate45_library()


@pytest.fixture()
def empty_netlist(library):
    """A fresh, empty netlist."""
    return Netlist("empty", library)


def make_inverter_chain(library, length: int = 4, name: str = "chain") -> Netlist:
    """in -> INV x length -> out, with a clock-less pure-comb netlist."""
    nl = Netlist(name, library)
    nl.add_port("in", PortDirection.INPUT)
    nl.add_port("out", PortDirection.OUTPUT)
    nl.add_net("in")
    nl.connect_port("in", "in")
    prev = "in"
    for i in range(length):
        inst = f"inv{i}"
        nl.add_instance(inst, "INV_X1")
        out = nl.add_net(f"n{i}").name if i < length - 1 else nl.add_net("out").name
        nl.connect(inst, "A", prev)
        nl.connect(inst, "ZN", out)
        prev = out
    nl.connect_port("out", "out")
    nl.validate()
    return nl


def make_registered_pipeline(library, stages: int = 3, name: str = "pipe") -> Netlist:
    """clk + in -> (INV, DFF) x stages -> out."""
    nl = Netlist(name, library)
    nl.add_port("clk", PortDirection.INPUT, is_clock=True)
    nl.add_net("clk")
    nl.connect_port("clk", "clk")
    nl.add_port("in", PortDirection.INPUT)
    nl.add_net("in")
    nl.connect_port("in", "in")
    nl.add_port("out", PortDirection.OUTPUT)
    prev = "in"
    for i in range(stages):
        inv = f"inv{i}"
        nl.add_instance(inv, "INV_X1")
        mid = nl.add_net(f"c{i}").name
        nl.connect(inv, "A", prev)
        nl.connect(inv, "ZN", mid)
        ff = f"ff{i}"
        nl.add_instance(ff, "DFF_X1")
        q = (
            nl.add_net(f"q{i}").name
            if i < stages - 1
            else nl.add_net("out").name
        )
        nl.connect(ff, "D", mid)
        nl.connect(ff, "CK", "clk")
        nl.connect(ff, "Q", q)
        prev = q
    nl.connect_port("out", "out")
    nl.validate()
    return nl


@pytest.fixture()
def chain_netlist(library):
    """A 4-inverter chain netlist."""
    return make_inverter_chain(library)


@pytest.fixture()
def pipeline_netlist(library):
    """A 3-stage registered pipeline netlist."""
    return make_registered_pipeline(library)


@pytest.fixture()
def small_layout(chain_netlist, tech):
    """The inverter chain placed in a 4x60 core."""
    layout = Layout(chain_netlist, tech, num_rows=4, sites_per_row=60)
    for i in range(4):
        layout.place(f"inv{i}", i % 2, 5 + 8 * i)
    from repro.place.global_place import assign_port_positions

    assign_port_positions(layout)
    return layout


@pytest.fixture(scope="session")
def tiny_design(library, tech):
    """A tiny generated design, placed and routed, for integration tests."""
    params = GeneratorParams(
        n_state=12, n_key=8, cone_inputs=3, cone_depth=3,
        n_inputs=8, n_outputs=8, seed=7,
    )
    netlist = generate_design("tiny", library, params)
    assets = annotate_key_assets(netlist)
    layout = global_place(
        netlist,
        tech,
        GlobalPlacementSpec(
            target_utilization=0.6, seed=7, clustered=tuple(assets)
        ),
    )
    routing = global_route(layout)
    constraints = TimingConstraints(clock_period=3.0)
    sta = run_sta(layout, constraints, routing=routing)
    return {
        "netlist": netlist,
        "layout": layout,
        "routing": routing,
        "constraints": constraints,
        "sta": sta,
        "assets": assets,
    }


@pytest.fixture(scope="session")
def present_design():
    """The smallest full benchmark design (cached at module scope)."""
    return build_design("PRESENT")


@pytest.fixture(scope="session")
def misty_design():
    """A mid-size, timing-loose benchmark design."""
    return build_design("MISTY")
