"""Unit tests for the metric primitives and their registry."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, Metrics


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_last_write_wins(self):
        g = Gauge("g")
        assert g.value is None
        g.set(2.0)
        g.set(1.0)
        assert g.value == 1.0

    def test_set_max_high_water_mark(self):
        g = Gauge("g")
        g.set_max(10.0)
        g.set_max(5.0)
        assert g.value == 10.0
        g.set_max(12.0)
        assert g.value == 12.0

    def test_set_min(self):
        g = Gauge("g")
        g.set_min(10.0)
        g.set_min(15.0)
        assert g.value == 10.0


class TestHistogram:
    def test_moments_exact(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5
        assert h.stddev == pytest.approx(1.11803, rel=1e-4)

    def test_percentiles_interpolate(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(95) == pytest.approx(95.05)

    def test_percentile_rejects_out_of_range(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_histogram_is_safe(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.stddev == 0.0
        assert h.percentile(50) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None

    def test_reservoir_decimates_but_moments_stay_exact(self):
        h = Histogram("h")
        n = 20000
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert h.total == sum(range(n))
        assert h.max == n - 1
        # bounded memory: the decimating reservoir never exceeds the cap
        assert len(h._sample) < 4096
        # and the retained sample still spans the stream
        assert h.percentile(50) == pytest.approx(n / 2, rel=0.05)


class TestMetricsRegistry:
    def test_get_or_create_idempotent(self):
        m = Metrics()
        assert m.counter("a") is m.counter("a")
        assert len(m) == 1

    def test_kind_collision_raises(self):
        m = Metrics()
        m.counter("a")
        with pytest.raises(TypeError):
            m.gauge("a")

    def test_snapshot_is_json_serializable_and_sorted(self):
        m = Metrics()
        m.counter("z.calls").inc(2)
        m.gauge("a.rss").set(1.5)
        m.histogram("m.wall").observe(0.25)
        snap = m.snapshot()
        assert list(snap) == sorted(snap)
        round_trip = json.loads(json.dumps(snap))
        assert round_trip["z.calls"]["value"] == 2
        assert round_trip["m.wall"]["count"] == 1

    def test_reset_clears(self):
        m = Metrics()
        m.counter("a").inc()
        m.reset()
        assert len(m) == 0
        assert "a" not in m

    def test_merge_snapshot_counters_add_gauges_max(self):
        a = Metrics()
        a.counter("evals").inc(3)
        a.gauge("rss").set(100.0)
        b = Metrics()
        b.counter("evals").inc(2)
        b.gauge("rss").set(250.0)
        a.merge_snapshot(b.snapshot())
        assert a.counter("evals").value == 5
        assert a.gauge("rss").value == 250.0

    def test_merge_snapshot_histograms_fold_moments(self):
        a = Metrics()
        for v in (1.0, 3.0):
            a.histogram("w").observe(v)
        b = Metrics()
        for v in (5.0, 7.0):
            b.histogram("w").observe(v)
        a.merge_snapshot(b.snapshot())
        h = a.histogram("w")
        assert h.count == 4
        assert h.total == 16.0
        assert h.min == 1.0
        assert h.max == 7.0
        assert h.mean == 4.0

    def test_merge_unknown_type_raises(self):
        m = Metrics()
        with pytest.raises(ValueError):
            m.merge_snapshot({"x": {"type": "sparkline"}})
