"""Unit tests for the ``timed`` stage timer, span tracing, and state."""

import io

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.get_metrics().reset()
    yield
    obs.disable()
    obs.get_metrics().reset()


class TestDisabledMode:
    def test_timed_records_nothing(self):
        with obs.timed("stage.x"):
            pass
        assert len(obs.get_metrics()) == 0

    def test_convenience_recorders_are_noops(self):
        obs.count("c", 5)
        obs.gauge_set("g", 1.0)
        obs.observe("h", 0.5)
        obs.point("p", k=1)
        assert len(obs.get_metrics()) == 0

    def test_is_enabled_reflects_state(self):
        assert not obs.is_enabled()
        obs.enable()
        assert obs.is_enabled()
        obs.disable()
        assert not obs.is_enabled()

    def test_decorated_function_still_runs(self):
        @obs.timed("stage.fn")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert len(obs.get_metrics()) == 0


class TestEnabledMode:
    def test_timed_records_calls_wall_and_rss(self):
        obs.enable()
        with obs.timed("stage.x"):
            pass
        m = obs.get_metrics()
        assert m.counter("stage.x.calls").value == 1
        h = m.histogram("stage.x.wall_s")
        assert h.count == 1
        assert h.max >= 0.0
        assert m.gauge("stage.x.peak_rss_kb").value > 0

    def test_decorator_checks_state_per_call(self):
        @obs.timed("stage.fn")
        def f():
            return 1

        f()  # disabled: nothing recorded
        obs.enable()
        f()
        f()
        assert obs.get_metrics().counter("stage.fn.calls").value == 2

    def test_exception_counted_and_propagated(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.timed("stage.bad"):
                raise RuntimeError("boom")
        m = obs.get_metrics()
        assert m.counter("stage.bad.errors").value == 1
        assert m.counter("stage.bad.calls").value == 1

    def test_enable_reset_controls_accumulation(self):
        obs.enable()
        obs.count("c")
        obs.enable(reset=False)
        obs.count("c")
        assert obs.get_metrics().counter("c").value == 2
        obs.enable()  # default resets
        assert len(obs.get_metrics()) == 0


class TestTrace:
    def test_nested_spans_parented_and_closed(self):
        buf = io.StringIO()
        obs.enable(trace_path=buf)
        with obs.timed("outer"):
            with obs.timed("inner"):
                obs.point("tick", n=1)
        obs.disable()
        events = obs.read_trace(buf)
        begins = {e["name"]: e for e in events if e["ev"] == "begin"}
        ends = [e for e in events if e["ev"] == "end"]
        assert begins["outer"]["parent"] is None
        assert begins["outer"]["depth"] == 0
        assert begins["inner"]["parent"] == begins["outer"]["id"]
        assert begins["inner"]["depth"] == 1
        assert len(ends) == 2
        assert all(e["ok"] for e in ends)
        point = next(e for e in events if e["ev"] == "point")
        assert point["parent"] == begins["inner"]["id"]
        assert point["attrs"] == {"n": 1}

    def test_span_durations_nest(self):
        buf = io.StringIO()
        obs.enable(trace_path=buf)
        with obs.timed("outer"):
            with obs.timed("inner"):
                pass
        obs.disable()
        ends = {
            e["name"]: e for e in obs.read_trace(buf) if e["ev"] == "end"
        }
        assert ends["inner"]["dur_s"] <= ends["outer"]["dur_s"]
        assert "peak_rss_kb" in ends["outer"]

    def test_trace_file_written_and_closed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=path)
        with obs.timed("root", design="X"):
            pass
        obs.disable()
        events = obs.read_trace(path)
        assert [e["ev"] for e in events] == ["begin", "end"]
        assert events[0]["attrs"] == {"design": "X"}

    def test_unclosed_spans_forced_closed_as_errors(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=path)
        obs.get_trace().begin("dangling")
        obs.disable()
        events = obs.read_trace(path)
        end = next(e for e in events if e["ev"] == "end")
        assert end["name"] == "dangling"
        assert end["ok"] is False

    def test_failed_span_marked_not_ok(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(trace_path=path)
        with pytest.raises(ValueError):
            with obs.timed("broken"):
                raise ValueError()
        obs.disable()
        end = next(
            e for e in obs.read_trace(path) if e["ev"] == "end"
        )
        assert end["ok"] is False


class TestWorkerDetach:
    def test_detach_keeps_enabled_drops_trace_and_registry(self):
        buf = io.StringIO()
        obs.enable(trace_path=buf)
        obs.count("inherited")
        obs.worker_detach()
        assert obs.is_enabled()
        assert obs.get_trace() is None
        assert len(obs.get_metrics()) == 0
        with obs.timed("worker.stage"):
            pass
        # metrics still recorded, but no trace events are written
        assert obs.get_metrics().counter("worker.stage.calls").value == 1
        assert buf.getvalue() == ""

    def test_detach_does_not_close_shared_sink(self):
        buf = io.StringIO()
        obs.enable(trace_path=buf)
        obs.worker_detach()
        # the parent's handle must remain usable: no forced-end events
        # were flushed into it and the underlying sink is still open
        assert not buf.closed
        assert buf.getvalue() == ""


class TestInstrumentedLibrary:
    def test_flow_records_stage_spans(self, present_design):
        from repro.core.flow import GDSIIGuard
        from repro.core.params import FlowConfig

        d = present_design
        guard = GDSIIGuard(
            d.layout, d.constraints, d.assets, baseline_routing=d.routing
        )
        obs.enable()
        guard.run(
            FlowConfig("CS", 2, 1, tuple([1.0] * d.technology.num_layers))
        )
        obs.disable()
        m = obs.get_metrics()
        for stage in (
            "flow.run",
            "flow.place_op",
            "flow.route",
            "flow.sta",
            "flow.security",
            "flow.power",
            "flow.drc",
            "route.global",
            "sta.run",
        ):
            assert m.counter(f"{stage}.calls").value >= 1, stage
        assert m.counter("flow.evaluations").value == 1
        assert m.counter("sta.nodes").value > 0

    def test_flow_unobserved_when_disabled(self, present_design):
        from repro.core.flow import GDSIIGuard
        from repro.core.params import FlowConfig

        d = present_design
        guard = GDSIIGuard(
            d.layout, d.constraints, d.assets, baseline_routing=d.routing
        )
        result = guard.run(
            FlowConfig("CS", 2, 1, tuple([1.0] * d.technology.num_layers))
        )
        assert result.layout is not None
        assert len(obs.get_metrics()) == 0
