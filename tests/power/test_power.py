"""Tests for the power model."""

import pytest

from repro.power.power import analyze_power
from repro.timing.constraints import TimingConstraints


class TestPowerComponents:
    def test_all_components_positive(self, tiny_design):
        p = analyze_power(
            tiny_design["layout"],
            tiny_design["constraints"],
            tiny_design["routing"],
        )
        assert p.leakage > 0
        assert p.internal > 0
        assert p.switching > 0
        assert p.total == pytest.approx(p.leakage + p.internal + p.switching)

    def test_faster_clock_more_dynamic_power(self, tiny_design):
        slow = analyze_power(
            tiny_design["layout"], TimingConstraints(clock_period=10.0)
        )
        fast = analyze_power(
            tiny_design["layout"], TimingConstraints(clock_period=1.0)
        )
        assert fast.internal > slow.internal
        assert fast.switching > slow.switching
        assert fast.leakage == pytest.approx(slow.leakage)

    def test_activity_scales_switching(self, tiny_design):
        low = analyze_power(
            tiny_design["layout"],
            tiny_design["constraints"],
            tiny_design["routing"],
            data_activity=0.05,
        )
        high = analyze_power(
            tiny_design["layout"],
            tiny_design["constraints"],
            tiny_design["routing"],
            data_activity=0.4,
        )
        assert high.switching > low.switching

    def test_more_cells_more_leakage(self, library, tech, tiny_design):
        """Adding filler cells increases leakage but not internal power."""
        layout = tiny_design["layout"].clone()
        netlist = layout.netlist.copy()
        layout.netlist = netlist
        base = analyze_power(layout, tiny_design["constraints"])
        k = 0
        for row in range(layout.num_rows):
            for gap in layout.occupancy[row].free_intervals():
                if len(gap) >= 4:
                    k += 1
                    netlist.add_instance(f"fill{k}", "FILLCELL_X4")
                    layout.place(f"fill{k}", row, gap.lo)
                    break
        filled = analyze_power(layout, tiny_design["constraints"])
        assert filled.leakage > base.leakage
        assert filled.internal == pytest.approx(base.internal)

    def test_routed_vs_estimated_similar_magnitude(self, tiny_design):
        est = analyze_power(tiny_design["layout"], tiny_design["constraints"])
        routed = analyze_power(
            tiny_design["layout"],
            tiny_design["constraints"],
            tiny_design["routing"],
        )
        assert routed.total == pytest.approx(est.total, rel=0.5)

    def test_benchmark_power_in_mw_range(self, present_design):
        p = analyze_power(
            present_design.layout,
            present_design.constraints,
            present_design.routing,
        )
        assert 0.05 < p.total < 50.0
