"""The exception hierarchy: one base class, subsystem groupings."""

from __future__ import annotations

import inspect

import pytest

from repro import errors
from repro.errors import (
    CheckpointError,
    InjectedFault,
    InjectedInterrupt,
    ReproError,
    ResilienceError,
)


def all_error_classes():
    return [
        cls
        for _, cls in inspect.getmembers(errors, inspect.isclass)
        if issubclass(cls, Exception)
    ]


class TestHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, ReproError), cls

    def test_base_catches_everything(self):
        for cls in all_error_classes():
            with pytest.raises(ReproError):
                raise cls("boom")

    def test_every_error_is_documented(self):
        for cls in all_error_classes():
            assert cls.__doc__, f"{cls.__name__} has no docstring"

    def test_resilience_grouping(self):
        """Checkpoint and fault-injection errors share the resilience
        branch, so supervisors can catch one class for all of them."""
        for cls in (CheckpointError, InjectedFault, InjectedInterrupt):
            assert issubclass(cls, ResilienceError)
        assert issubclass(ResilienceError, ReproError)
        # an injected interrupt is NOT an injected fault: the supervisor
        # retries faults but must let interrupts terminate the run
        assert not issubclass(InjectedInterrupt, InjectedFault)

    def test_messages_round_trip(self):
        err = CheckpointError("corrupt checkpoint /x (bad)")
        assert "corrupt checkpoint" in str(err)
        assert isinstance(err, ReproError)
