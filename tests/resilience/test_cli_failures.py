"""CLI failure paths: every bad input exits non-zero with a one-line
actionable message on stderr and never a traceback.

These run ``python -m repro.cli`` as a subprocess — the honest test that
no exception escapes ``main()`` — and stay cheap because every failure
fires before any flow evaluation runs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*args, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


def assert_clean_failure(proc, *needles):
    assert proc.returncode == 2, proc.stderr
    assert "Traceback" not in proc.stderr, proc.stderr
    for needle in needles:
        assert needle in proc.stderr, proc.stderr


class TestCliFailurePaths:
    def test_bad_design_name(self):
        proc = run_cli("baseline", "NOPE")
        assert_clean_failure(proc, "invalid choice", "NOPE")

    def test_bad_design_name_on_explore(self):
        proc = run_cli("explore", "not-a-design")
        assert_clean_failure(proc, "invalid choice")

    def test_corrupt_checkpoint_on_explore_resume(self, tmp_path):
        ckdir = tmp_path / "run"
        ckdir.mkdir()
        (ckdir / "checkpoint.json").write_text("{definitely not json")
        proc = run_cli(
            "explore", "PRESENT", "--population", "4", "--generations", "1",
            "--checkpoint-dir", str(ckdir), "--resume",
        )
        assert_clean_failure(
            proc, "repro: error:", "corrupt checkpoint", "--resume"
        )
        # one-line message: actionable, not a dump
        assert len(proc.stderr.strip().splitlines()) == 1

    def test_version_incompatible_checkpoint_rejected(self, tmp_path):
        from repro.resilience.checkpoint import CHECKPOINT_SCHEMA_VERSION

        ckdir = tmp_path / "run"
        ckdir.mkdir()
        (ckdir / "checkpoint.json").write_text(json.dumps(
            {"kind": "exploration",
             "schema_version": CHECKPOINT_SCHEMA_VERSION + 1}
        ))
        proc = run_cli(
            "explore", "PRESENT", "--population", "4", "--generations", "1",
            "--checkpoint-dir", str(ckdir), "--resume",
        )
        assert_clean_failure(proc, "repro: error:", "schema version")

    def test_unwritable_checkpoint_dir_on_harden(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")  # a file: mkdir under it fails even as root
        proc = run_cli(
            "harden", "PRESENT", "--checkpoint-dir", str(blocker / "run"),
        )
        assert_clean_failure(
            proc, "repro: error:", "not writable", "--checkpoint-dir"
        )

    def test_unwritable_checkpoint_dir_on_explore(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        proc = run_cli(
            "explore", "PRESENT", "--population", "4", "--generations", "1",
            "--checkpoint-dir", str(blocker / "run"),
        )
        assert_clean_failure(proc, "repro: error:", "not writable")

    def test_ga_settings_mismatch_on_resume(self, tmp_path, make_explorer):
        """A checkpoint written with different GA settings is refused with
        a message naming the differing knobs."""
        ckdir = tmp_path / "run"
        make_explorer(checkpoint_dir=ckdir).explore()  # FakeGuard, seed 3
        proc = run_cli(
            "explore", "PRESENT", "--population", "4", "--generations", "1",
            "--seed", "5", "--checkpoint-dir", str(ckdir), "--resume",
        )
        assert_clean_failure(
            proc, "repro: error:", "different settings"
        )
