"""Checkpoint manager + exploration-state codec tests."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, strategies as st

from repro.core.params import FlowConfig
from repro.errors import CheckpointError, ReproError, ResilienceError
from repro.optimize.nsga2 import Individual
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointManager,
    ExplorationCheckpoint,
    decode_flow_config,
    encode_flow_config,
)


def make_individual(i: int) -> Individual:
    ind = Individual(
        genome=FlowConfig(
            op_select="CS" if i % 2 == 0 else "LDA",
            lda_n=(2, 4, 8, 16)[i % 4],
            lda_n_iter=1 + (i % 2),
            rws_scales=((1.0, 1.2, 1.5)[i % 3], 1.0, 1.5),
        ),
        objectives=(0.1 * i + 1e-7, -0.25 * i),
        violation=0.0 if i % 3 else 0.5 * i,
    )
    ind.rank = i % 2
    ind.crowding = float("inf") if i == 0 else 0.125 * i
    return ind


def make_checkpoint(n: int = 4) -> ExplorationCheckpoint:
    population = [make_individual(i) for i in range(n)]
    cache = {
        ("CS", 2 + 2 * i, 1, (1.0, 1.2, 1.0)): ((0.1 * i, -0.2 * i), 0.0)
        for i in range(n)
    }
    return ExplorationCheckpoint(
        generation=2,
        population=population,
        history=[[(ind.objectives, ind.violation) for ind in population]],
        rng_state={
            "bit_generator": "PCG64",
            "state": {"state": 123456789, "inc": 987654321},
            "has_uint32": 0,
            "uinteger": 0,
        },
        eval_cache=cache,
        evaluations=n,
        cache_requests=2 * n,
        cache_hits=n,
        stall=1,
        best_proxy=-0.75,
        nsga2={"population_size": n, "generations": 4, "seed": 9},
        num_layers=3,
    )


class TestCheckpointManager:
    def test_save_and_load_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path / "run")
        path = manager.save_payload({"kind": "x", "value": [1, 2.5, "a"]})
        assert path == manager.path
        payload = manager.load_payload()
        assert payload["value"] == [1, 2.5, "a"]
        assert payload["schema_version"] == CHECKPOINT_SCHEMA_VERSION

    def test_load_absent_returns_none(self, tmp_path):
        assert CheckpointManager(tmp_path / "run").load_payload() is None

    def test_no_temp_droppings_after_save(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save_payload({"kind": "x"})
        manager.save_payload({"kind": "y"})
        assert [p.name for p in tmp_path.iterdir()] == ["checkpoint.json"]

    def test_failed_write_keeps_previous_checkpoint(self, tmp_path, monkeypatch):
        manager = CheckpointManager(tmp_path)
        manager.save_payload({"kind": "x", "value": 1})

        import repro.resilience.checkpoint as ckpt_mod

        def boom(fd):
            raise OSError("disk full")

        monkeypatch.setattr(ckpt_mod.os, "fsync", boom)
        with pytest.raises(CheckpointError, match="cannot write"):
            manager.save_payload({"kind": "x", "value": 2})
        monkeypatch.undo()
        assert manager.load_payload()["value"] == 1
        assert [p.name for p in tmp_path.iterdir()] == ["checkpoint.json"]

    def test_unwritable_directory_rejected(self, tmp_path):
        # a path *under a regular file* cannot be mkdir'd, even as root
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(CheckpointError, match="not writable"):
            CheckpointManager(blocker / "run")

    def test_corrupt_json_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.path.write_text("{broken")
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            manager.load_payload()

    def test_missing_schema_version_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.path.write_text(json.dumps({"kind": "exploration"}))
        with pytest.raises(CheckpointError, match="schema_version"):
            manager.load_payload()

    def test_future_schema_version_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save_payload({"kind": "exploration"})
        payload = json.loads(manager.path.read_text())
        payload["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        manager.path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError) as err:
            manager.load_payload()
        assert f"version {CHECKPOINT_SCHEMA_VERSION + 1}" in str(err.value)
        assert "without --resume" in str(err.value)

    def test_checkpoint_error_is_repro_error(self):
        assert issubclass(CheckpointError, ResilienceError)
        assert issubclass(CheckpointError, ReproError)


class TestFlowConfigCodec:
    def test_round_trip(self):
        cfg = FlowConfig("LDA", 16, 2, (1.0, 1.5, 1.2))
        assert decode_flow_config(encode_flow_config(cfg)) == cfg

    def test_malformed_payload_rejected(self):
        with pytest.raises(CheckpointError, match="malformed genome"):
            decode_flow_config({"op_select": "CS"})


class TestExplorationCheckpoint:
    def test_payload_round_trip_is_exact(self):
        ckpt = make_checkpoint()
        restored = ExplorationCheckpoint.from_payload(ckpt.to_payload())
        assert restored.to_payload() == ckpt.to_payload()
        assert restored.rng_state == ckpt.rng_state
        assert restored.eval_cache == ckpt.eval_cache
        for a, b in zip(restored.population, ckpt.population):
            assert a.genome == b.genome
            assert a.objectives == b.objectives
            assert a.violation == b.violation
            assert a.rank == b.rank
            assert a.crowding == b.crowding

    def test_json_round_trip_is_byte_stable(self, tmp_path):
        """save → load → save reproduces the identical bytes (fixed
        point), which is what makes checkpoints diffable in CI."""
        manager = CheckpointManager(tmp_path)
        make_checkpoint().save(manager)
        first = manager.path.read_bytes()
        ExplorationCheckpoint.load(manager).save(manager)
        assert manager.path.read_bytes() == first

    def test_wrong_kind_rejected(self):
        payload = make_checkpoint().to_payload()
        payload["kind"] = "harden"
        with pytest.raises(CheckpointError, match="not an .*exploration"):
            ExplorationCheckpoint.from_payload(payload)

    def test_malformed_payload_rejected(self):
        payload = make_checkpoint().to_payload()
        del payload["counters"]
        with pytest.raises(CheckpointError, match="malformed exploration"):
            ExplorationCheckpoint.from_payload(payload)

    @given(
        objectives=st.tuples(
            st.floats(allow_nan=False, allow_infinity=False),
            st.floats(allow_nan=False, allow_infinity=False),
        ),
        violation=st.floats(min_value=0.0, allow_nan=False,
                            allow_infinity=False),
        crowding=st.one_of(
            st.just(float("inf")),
            st.floats(min_value=0.0, allow_nan=False, allow_infinity=False),
        ),
    )
    def test_floats_survive_json_exactly(self, objectives, violation,
                                         crowding):
        """Python's json emits floats via repr, which round-trips every
        finite float (and Infinity) bit-for-bit — the foundation of the
        bitwise resume guarantee."""
        ind = Individual(
            genome=FlowConfig("CS", 2, 1, (1.0, 1.0, 1.0)),
            objectives=objectives,
            violation=violation,
        )
        ind.rank = 0
        ind.crowding = crowding
        ckpt = make_checkpoint(2)
        ckpt.population[0] = ind
        text = json.dumps(ckpt.to_payload())
        restored = ExplorationCheckpoint.from_payload(json.loads(text))
        assert restored.population[0].objectives == objectives
        assert restored.population[0].violation == violation
        assert restored.population[0].crowding == crowding
