"""Chaos tests for the exploration loop: kill/resume sweeps and injected
worker faults, asserting bitwise-identical Pareto fronts throughout.

Fast tier drives the millisecond-scale ``FakeGuard``; the ``slow``
markers re-run the acceptance scenario from the issue on the real
PRESENT benchmark (pop 10, gen 4, seed 9), sharing one warm guard across
runs — valid because the incremental evaluator is bitwise-equivalent to
the full recompute (the PR-2 differential harness guarantees it), so a
warm cache changes runtime only, never objectives.
"""

from __future__ import annotations

import pytest

from repro.core.flow import GDSIIGuard
from repro.errors import CheckpointError, InjectedInterrupt
from repro.lint import run_lint
from repro.optimize.explorer import ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.supervisor import SupervisionConfig
from tests.resilience.conftest import front_key


def interrupted_then_resumed(make, run_dir, generation, processes=0):
    """Run until the injected interrupt after ``generation``, then resume."""
    faults.install(FaultPlan(
        [FaultSpec(generation=generation, kind="interrupt")]
    ))
    try:
        with pytest.raises(InjectedInterrupt):
            make(checkpoint_dir=run_dir, processes=processes).explore()
    finally:
        faults.clear()
    resumed = make(
        checkpoint_dir=run_dir, resume=True, processes=processes
    ).explore()
    assert resumed.resumed_from == generation
    return resumed


class TestFakeGuardChaos:
    @pytest.mark.parametrize("processes", [0, 2])
    def test_kill_at_every_generation_resumes_bitwise(
        self, make_explorer, tmp_path, processes
    ):
        oracle = make_explorer(processes=processes).explore()
        # one checkpoint boundary per *executed* generation — the stall
        # break can end the run before config.generations
        for gen in range(len(oracle.history)):
            resumed = interrupted_then_resumed(
                make_explorer, tmp_path / f"g{gen}", gen, processes
            )
            assert front_key(resumed) == front_key(oracle)
            assert resumed.history == oracle.history
            assert resumed.evaluations == oracle.evaluations

    def test_parallel_resume_matches_serial_oracle(
        self, make_explorer, tmp_path
    ):
        oracle = make_explorer(processes=0).explore()
        resumed = interrupted_then_resumed(
            make_explorer, tmp_path, generation=1, processes=2
        )
        assert front_key(resumed) == front_key(oracle)
        assert resumed.history == oracle.history

    def test_resume_without_checkpoint_starts_fresh(
        self, make_explorer, tmp_path
    ):
        fresh = make_explorer(checkpoint_dir=tmp_path, resume=True).explore()
        oracle = make_explorer().explore()
        assert fresh.resumed_from is None
        assert front_key(fresh) == front_key(oracle)

    def test_resume_with_different_ga_settings_rejected(
        self, make_explorer, tmp_path, fake_space
    ):
        make_explorer(checkpoint_dir=tmp_path).explore()
        other = make_explorer(
            checkpoint_dir=tmp_path,
            resume=True,
            config=NSGA2Config(population_size=8, generations=3, seed=99),
        )
        with pytest.raises(CheckpointError, match="different settings"):
            other.explore()

    def test_completed_run_resumes_to_identical_result(
        self, make_explorer, tmp_path
    ):
        first = make_explorer(checkpoint_dir=tmp_path).explore()
        again = make_explorer(checkpoint_dir=tmp_path, resume=True).explore()
        assert again.resumed_from is not None
        assert front_key(again) == front_key(first)
        assert again.history == first.history
        # nothing re-evaluated: the memo cache came back from the checkpoint
        assert again.evaluations == first.evaluations

    def test_injected_worker_faults_never_change_the_front(
        self, make_explorer
    ):
        oracle = make_explorer().explore()
        plan = FaultPlan([
            FaultSpec(generation=1, individual=0, attempt=0, kind="crash"),
            FaultSpec(generation=2, individual=1, attempt=0, kind="error"),
            FaultSpec(generation=1, individual=2, attempt=0, kind="hang",
                      hang_s=30.0),
        ])
        faults.install(plan)
        try:
            chaotic = make_explorer(
                processes=2,
                supervision=SupervisionConfig(
                    timeout_s=0.5, backoff_s=0.0, poll_s=0.01
                ),
            ).explore()
        finally:
            faults.clear()
        assert front_key(chaotic) == front_key(oracle)
        assert chaotic.history == oracle.history
        counts = plan.counts()
        state = chaotic.resilience.as_dict()
        assert state["worker_deaths"] == counts["crash"]
        assert state["task_failures"] == counts["error"]
        assert state["timeouts"] == counts["hang"]
        assert state["retries"] == sum(counts.values())
        assert not state["degraded"]

    def test_faults_plus_interrupt_resume_still_bitwise(
        self, make_explorer, tmp_path
    ):
        """The combined scenario: a mid-run worker crash *and* a kill at
        the next generation boundary; the resumed run must still land on
        the oracle front."""
        oracle = make_explorer().explore()
        faults.install(FaultPlan([
            FaultSpec(generation=1, individual=1, attempt=0, kind="crash"),
            FaultSpec(generation=1, kind="interrupt"),
        ]))
        try:
            with pytest.raises(InjectedInterrupt):
                make_explorer(checkpoint_dir=tmp_path, processes=2).explore()
        finally:
            faults.clear()
        resumed = make_explorer(
            checkpoint_dir=tmp_path, resume=True, processes=2
        ).explore()
        assert front_key(resumed) == front_key(oracle)
        assert resumed.history == oracle.history


# --------------------------------------------------------------------- #
# acceptance scenario on the real benchmark (issue: PRESENT, pop 10,
# gen 4, seed 9) — slow tier
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def present_guard(present_design):
    d = present_design
    return GDSIIGuard(
        d.layout, d.constraints, d.assets, baseline_routing=d.routing
    )


@pytest.fixture(scope="module")
def present_ga_config():
    return NSGA2Config(population_size=10, generations=4, seed=9)


@pytest.fixture(scope="module")
def present_oracle(present_guard, present_ga_config):
    return ParetoExplorer(
        present_guard, config=present_ga_config
    ).explore()


def make_present_explorer(guard, config, **kwargs):
    kwargs.setdefault(
        "supervision", SupervisionConfig(backoff_s=0.0, poll_s=0.01)
    )
    return ParetoExplorer(guard, config=config, **kwargs)


@pytest.mark.slow
class TestPresentChaos:
    @pytest.mark.parametrize("processes", [0, 2])
    def test_interrupt_after_every_generation_sweep(
        self, present_guard, present_ga_config, present_oracle, run_dir,
        processes,
    ):
        # sweep every checkpoint boundary the run actually reaches (the
        # stall break ends PRESENT seed 9 after generation 3, so there
        # is no generation-4 boundary to interrupt)
        for gen in range(len(present_oracle.history)):
            ckdir = run_dir / f"p{processes}-g{gen}"
            faults.install(FaultPlan(
                [FaultSpec(generation=gen, kind="interrupt")]
            ))
            try:
                with pytest.raises(InjectedInterrupt):
                    make_present_explorer(
                        present_guard, present_ga_config,
                        checkpoint_dir=ckdir, processes=processes,
                    ).explore()
            finally:
                faults.clear()
            resumed = make_present_explorer(
                present_guard, present_ga_config,
                checkpoint_dir=ckdir, resume=True, processes=processes,
            ).explore()
            assert resumed.resumed_from == gen
            assert front_key(resumed) == front_key(present_oracle)
            assert resumed.history == present_oracle.history
            assert resumed.evaluations == present_oracle.evaluations

    def test_injected_crash_and_timeout_complete_with_oracle_front(
        self, present_guard, present_ga_config, present_oracle
    ):
        plan = FaultPlan([
            FaultSpec(generation=1, individual=0, attempt=0, kind="crash"),
            FaultSpec(generation=2, individual=0, attempt=0, kind="hang",
                      hang_s=120.0),
        ])
        faults.install(plan)
        try:
            chaotic = make_present_explorer(
                present_guard, present_ga_config, processes=2,
                supervision=SupervisionConfig(
                    timeout_s=20.0, backoff_s=0.0, poll_s=0.01
                ),
            ).explore()
        finally:
            faults.clear()
        assert front_key(chaotic) == front_key(present_oracle)
        assert chaotic.history == present_oracle.history
        state = chaotic.resilience.as_dict()
        assert state["worker_deaths"] == 1
        assert state["timeouts"] == 1
        assert state["retries"] == 2
        assert not state["degraded"]
        # lint-as-oracle: worker deaths and retries must never corrupt
        # the shared baseline layout the evaluations clone from
        report = run_lint(
            present_guard.baseline, assets=present_guard.assets
        )
        assert report.errors == 0, report.format_text(verbose=True)
