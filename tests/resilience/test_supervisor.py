"""Supervised task-queue tests: retries, crash isolation, degradation.

These drive :class:`TaskSupervisor` directly with the millisecond-scale
``FakeGuard`` so every recovery path runs in the fast tier.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.params import FlowConfig
from repro.errors import InjectedFault
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.supervisor import (
    EvalTask,
    ResilienceState,
    SupervisionConfig,
    TaskSupervisor,
    _evaluate_config,
    _init_worker,
)
from tests.resilience.conftest import FakeGuard, ObsFakeGuard

RWS = [(1.0, 1.0, 1.0), (1.2, 1.0, 1.0), (1.5, 1.0, 1.2), (1.0, 1.5, 1.5),
       (1.2, 1.2, 1.2), (1.5, 1.5, 1.5)]


def make_tasks(n=6, generation=0):
    return [
        EvalTask(
            index=i,
            config=FlowConfig("CS", 2, 1, RWS[i % len(RWS)]),
            generation=generation,
            individual=i,
        )
        for i in range(n)
    ]


def expected_results(tasks):
    _init_worker(FakeGuard())
    return [_evaluate_config(t.config) for t in tasks]


def fast_config(**overrides):
    defaults = dict(timeout_s=5.0, max_retries=2, backoff_s=0.0,
                    max_worker_failures=4, poll_s=0.01)
    defaults.update(overrides)
    return SupervisionConfig(**defaults)


class TestSerialPath:
    def test_empty_batch(self):
        sup = TaskSupervisor(FakeGuard(), workers=0, config=fast_config())
        assert sup.run([]) == []

    def test_results_match_direct_evaluation(self):
        tasks = make_tasks()
        sup = TaskSupervisor(FakeGuard(), workers=0, config=fast_config())
        assert sup.run(tasks) == expected_results(tasks)

    def test_transient_error_is_retried(self):
        faults.install(FaultPlan([FaultSpec(generation=0, kind="error",
                                            individual=2, attempt=0)]))
        tasks = make_tasks()
        state = ResilienceState()
        sup = TaskSupervisor(FakeGuard(), workers=0, config=fast_config(),
                             state=state)
        assert sup.run(tasks) == expected_results(tasks)
        assert state.retries == 1
        assert state.task_failures == 1
        assert not state.degraded

    def test_persistent_error_propagates_after_retries(self):
        specs = [FaultSpec(generation=0, kind="error", individual=0,
                           attempt=a) for a in range(10)]
        faults.install(FaultPlan(specs))
        state = ResilienceState()
        sup = TaskSupervisor(FakeGuard(), workers=0,
                             config=fast_config(max_retries=2), state=state)
        with pytest.raises(InjectedFault):
            sup.run(make_tasks(1))
        assert state.retries == 2  # bounded: max_retries re-dispatches
        assert state.task_failures == 3  # initial try + two retries

    def test_retry_bumps_swallowed_errors_counter(self):
        faults.install(FaultPlan([FaultSpec(generation=0, kind="error",
                                            individual=2, attempt=0)]))
        sup = TaskSupervisor(FakeGuard(), workers=0, config=fast_config())
        obs.enable()
        try:
            sup.run(make_tasks())
            snap = obs.get_metrics().snapshot()
        finally:
            obs.disable()
        assert snap["resilience.swallowed_errors"]["value"] == 1

    def test_non_library_exception_is_not_retried(self, monkeypatch):
        # The serial retry loop only swallows ReproError (the library's
        # own failures, injected faults included); a genuine bug like a
        # TypeError must propagate on the first attempt.
        from repro.resilience import supervisor as sup_mod

        def broken(config):
            raise TypeError("genuine bug")

        monkeypatch.setattr(sup_mod, "_evaluate_config", broken)
        state = ResilienceState()
        sup = TaskSupervisor(FakeGuard(), workers=0,
                             config=fast_config(max_retries=5), state=state)
        with pytest.raises(TypeError, match="genuine bug"):
            sup.run(make_tasks(1))
        assert state.retries == 0
        assert state.task_failures == 0


class TestSupervisedPool:
    def test_results_match_serial_in_task_order(self):
        tasks = make_tasks()
        sup = TaskSupervisor(FakeGuard(), workers=2, config=fast_config())
        assert sup.run(tasks) == expected_results(tasks)

    def test_worker_crash_requeues_task(self):
        faults.install(FaultPlan([FaultSpec(generation=0, kind="crash",
                                            individual=3, attempt=0)]))
        tasks = make_tasks()
        state = ResilienceState()
        sup = TaskSupervisor(FakeGuard(), workers=2, config=fast_config(),
                             state=state)
        assert sup.run(tasks) == expected_results(tasks)
        assert state.worker_deaths == 1
        assert state.retries == 1
        assert not state.degraded

    def test_hung_worker_is_killed_and_task_retried(self):
        faults.install(FaultPlan([FaultSpec(generation=0, kind="hang",
                                            individual=1, attempt=0,
                                            hang_s=30.0)]))
        tasks = make_tasks(4)
        state = ResilienceState()
        sup = TaskSupervisor(FakeGuard(), workers=2,
                             config=fast_config(timeout_s=0.5), state=state)
        assert sup.run(tasks) == expected_results(tasks)
        assert state.timeouts == 1
        assert state.retries == 1

    def test_task_exception_returns_structured_failure(self):
        """An exception inside the evaluation is caught in the worker
        (not a worker death) and the task is retried."""
        faults.install(FaultPlan([FaultSpec(generation=0, kind="error",
                                            individual=0, attempt=0)]))
        tasks = make_tasks(3)
        state = ResilienceState()
        sup = TaskSupervisor(FakeGuard(), workers=2, config=fast_config(),
                             state=state)
        assert sup.run(tasks) == expected_results(tasks)
        assert state.task_failures == 1
        assert state.worker_deaths == 0
        assert state.retries == 1

    def test_counters_equal_injected_fault_counts(self):
        plan = FaultPlan([
            FaultSpec(generation=0, kind="crash", individual=0, attempt=0),
            FaultSpec(generation=0, kind="error", individual=2, attempt=0),
            FaultSpec(generation=0, kind="hang", individual=4, attempt=0,
                      hang_s=30.0),
        ])
        faults.install(plan)
        tasks = make_tasks()
        state = ResilienceState()
        sup = TaskSupervisor(FakeGuard(), workers=2,
                             config=fast_config(timeout_s=0.5), state=state)
        assert sup.run(tasks) == expected_results(tasks)
        counts = plan.counts()
        assert state.worker_deaths == counts["crash"]
        assert state.task_failures == counts["error"]
        assert state.timeouts == counts["hang"]
        assert state.retries == sum(counts.values())

    def test_repeated_pool_failures_degrade_to_serial(self):
        faults.install(FaultPlan([
            FaultSpec(generation=0, kind="crash", individual=i, attempt=a)
            for i in range(3) for a in range(2)
        ]))
        tasks = make_tasks()
        state = ResilienceState()
        sup = TaskSupervisor(
            FakeGuard(), workers=2,
            config=fast_config(max_worker_failures=2, max_retries=4),
            state=state,
        )
        assert sup.run(tasks) == expected_results(tasks)
        assert state.degraded
        assert state.worker_deaths >= 2

    def test_degraded_state_is_sticky_across_batches(self):
        state = ResilienceState(degraded=True)
        sup = TaskSupervisor(FakeGuard(), workers=2, config=fast_config(),
                             state=state)
        # degraded → the pool is never spawned; results still correct
        tasks = make_tasks(3)
        assert sup.run(tasks) == expected_results(tasks)

    def test_pool_retries_exhausted_surfaces_real_error(self):
        specs = [FaultSpec(generation=0, kind="crash", individual=0,
                           attempt=a) for a in range(10)]
        faults.install(FaultPlan(specs))
        sup = TaskSupervisor(
            FakeGuard(), workers=2,
            config=fast_config(max_retries=1, max_worker_failures=10),
        )
        # pool attempts exhausted → final in-process evaluation raises the
        # fault itself (in serial mode a "crash" raises InjectedFault)
        with pytest.raises(InjectedFault):
            sup.run(make_tasks(1))


class TestObsFolding:
    def test_worker_metric_deltas_fold_into_parent(self):
        tasks = make_tasks(4)
        obs.enable()
        try:
            sup = TaskSupervisor(ObsFakeGuard(), workers=2,
                                 config=fast_config())
            sup.run(tasks)
            snap = obs.get_metrics().snapshot()
        finally:
            obs.disable()
        assert snap["fake.evals"]["value"] == len(tasks)

    def test_partial_deltas_survive_mid_evaluation_failure(self):
        """A flow-error fires *after* the counter bump; the failed
        attempt's partial delta plus the retry must both fold in."""
        faults.install(FaultPlan([FaultSpec(generation=0, kind="flow-error",
                                            individual=1, attempt=0)]))
        tasks = make_tasks(4)
        obs.enable()
        try:
            state = ResilienceState()
            sup = TaskSupervisor(ObsFakeGuard(), workers=2,
                                 config=fast_config(), state=state)
            results = sup.run(tasks)
            snap = obs.get_metrics().snapshot()
        finally:
            obs.disable()
        assert results == expected_results(tasks)
        # 4 successful evaluations + 1 failed attempt that counted first
        assert snap["fake.evals"]["value"] == len(tasks) + 1
        assert snap["resilience.task_failures"]["value"] == 1
        assert snap["resilience.retries"]["value"] == 1
        assert state.task_failures == 1

    def test_obs_counters_mirror_state(self):
        faults.install(FaultPlan([FaultSpec(generation=0, kind="crash",
                                            individual=0, attempt=0)]))
        tasks = make_tasks(3)
        obs.enable()
        try:
            state = ResilienceState()
            sup = TaskSupervisor(FakeGuard(), workers=2,
                                 config=fast_config(), state=state)
            sup.run(tasks)
            snap = obs.get_metrics().snapshot()
        finally:
            obs.disable()
        assert snap["resilience.worker_deaths"]["value"] == state.worker_deaths
        assert snap["resilience.retries"]["value"] == state.retries
