"""``repro profile`` under injected faults (the REPRO_FAULTS env hook).

Acceptance check from the issue: the ``resilience.*`` counters printed by
``repro profile`` must equal the injected fault counts, and the stage
table must stay complete (partial worker deltas folded) despite the
chaos.  Runs the real PRESENT benchmark in a subprocess → slow tier.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def counter_value(output: str, name: str) -> int:
    match = re.search(rf"{re.escape(name)}\s*\|\s*(\d+)", output)
    assert match, f"{name} not found in:\n{output}"
    return int(match.group(1))


@pytest.mark.slow
class TestProfileUnderFaults:
    def test_resilience_counters_match_injected_faults(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        # --no-incremental runs explore exactly once, so each attempt-0
        # spec fires exactly once (the incremental mode's oracle pass
        # would re-fire them and double the counters)
        plan_path.write_text(json.dumps({
            "faults": [
                {"generation": 0, "individual": 0, "attempt": 0,
                 "kind": "crash"},
                {"generation": 1, "individual": 0, "attempt": 0,
                 "kind": "error"},
            ]
        }))
        env = dict(os.environ, REPRO_FAULTS=str(plan_path))
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "profile", "PRESENT",
                "--population", "4", "--generations", "1", "--seed", "3",
                "--processes", "2", "--no-incremental",
                "--trace", str(tmp_path / "trace.jsonl"),
                "--json", str(tmp_path / "metrics.json"),
            ],
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
            timeout=900,
        )
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        # the stage table is complete despite the faults
        assert "Stage profile — PRESENT" in out
        assert "flow.place_op" in out
        assert "memo hit rate" in out
        # resilience counters equal the injected fault counts
        assert "Resilience counters" in out
        assert counter_value(out, "resilience.worker_deaths") == 1
        assert counter_value(out, "resilience.task_failures") == 1
        assert counter_value(out, "resilience.retries") == 2
        # the archived snapshot carries the same counters
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["metrics"]["resilience.worker_deaths"]["value"] == 1
        assert metrics["metrics"]["resilience.retries"]["value"] == 2
