"""Shared chaos-test fixtures: fake guards, fault hygiene, run dirs.

The fake guards live in :mod:`repro.service.testing` (the service's
chaos/differential suites and ``repro serve --guard fake`` share them);
they are re-exported here so existing chaos tests keep importing from
``tests.resilience.conftest``.  Module-level classes in the package mean
forked supervisor workers inherit them through the fork memory image.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro.core.params import ParameterSpace
from repro.optimize.explorer import ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config
from repro.resilience import faults
from repro.resilience.supervisor import SupervisionConfig
from repro.service.testing import (  # noqa: F401  (re-exports)
    FakeGuard,
    FakeResult,
    ObsFakeGuard,
)


@pytest.fixture(autouse=True)
def _fault_hygiene():
    """No fault plan may leak into (or out of) any test."""
    faults.clear()
    yield
    faults.clear()


@pytest.fixture()
def fake_space():
    return ParameterSpace(num_layers=3)


@pytest.fixture()
def ga_config():
    return NSGA2Config(population_size=8, generations=3, seed=3)


@pytest.fixture()
def make_explorer(fake_space, ga_config):
    """Factory for FakeGuard explorers with test-friendly supervision."""

    def factory(
        checkpoint_dir=None,
        resume=False,
        processes=0,
        guard=None,
        supervision=None,
        config=None,
    ):
        return ParetoExplorer(
            guard or FakeGuard(),
            space=fake_space,
            config=config or ga_config,
            processes=processes,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            supervision=supervision
            or SupervisionConfig(backoff_s=0.0, poll_s=0.01),
        )

    return factory


@pytest.fixture()
def run_dir(request, tmp_path):
    """A per-test run directory for checkpoints.

    Defaults to ``tmp_path``; when ``REPRO_CHAOS_RUNDIR`` is set (the CI
    resilience job points it at a workspace path) run directories land
    there instead, so a failing job can upload them as an artifact.
    """
    base = os.environ.get("REPRO_CHAOS_RUNDIR", "").strip()
    if not base:
        return tmp_path / "run"
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.nodeid)
    path = Path(base) / safe
    path.mkdir(parents=True, exist_ok=True)
    return path


def front_key(result):
    """Order-independent, bitwise-comparable view of a Pareto front."""
    return sorted(
        (
            ind.objectives,
            ind.violation,
            ind.genome.op_select,
            ind.genome.lda_n,
            ind.genome.lda_n_iter,
            ind.genome.rws_scales,
        )
        for ind in result.pareto_front
    )
