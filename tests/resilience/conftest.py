"""Shared chaos-test fixtures: fake guards, fault hygiene, run dirs.

The fake guards compute objectives with plain arithmetic on the genome
(never ``hash()`` — that would couple results to ``PYTHONHASHSEED`` and
break the bitwise resume assertions).  They are module-level classes so
forked supervisor workers inherit them through the fork memory image.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro import obs
from repro.core.params import ParameterSpace
from repro.optimize.explorer import ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config
from repro.resilience import faults
from repro.resilience.supervisor import SupervisionConfig


class FakeResult:
    """Minimal stand-in for FlowResult: objectives + a violation hook."""

    def __init__(self, objectives, violation=0.0):
        self.objectives = objectives
        self._violation = violation

    def constraint_violation(self, n_drc, beta_power, base_power):
        return self._violation


class FakeGuard:
    """Deterministic millisecond-scale evaluator with the guard protocol."""

    n_drc = 20
    beta_power = 1.2
    baseline_power = 1.0
    incremental = True

    def run(self, config):
        s = (
            0.1 * config.lda_n
            + 0.01 * config.lda_n_iter
            + sum(config.rws_scales)
        ) * (1.0 if config.op_select == "CS" else 0.9)
        return FakeResult((round(s % 1.0, 6), round((s * 7) % 2.0, 6)))


class ObsFakeGuard(FakeGuard):
    """FakeGuard that emits an obs counter and honors flow-level faults,
    so tests can assert partial metric deltas survive injected failures."""

    def run(self, config):
        obs.count("fake.evals")
        faults.maybe_flow_fault()
        return super().run(config)


@pytest.fixture(autouse=True)
def _fault_hygiene():
    """No fault plan may leak into (or out of) any test."""
    faults.clear()
    yield
    faults.clear()


@pytest.fixture()
def fake_space():
    return ParameterSpace(num_layers=3)


@pytest.fixture()
def ga_config():
    return NSGA2Config(population_size=8, generations=3, seed=3)


@pytest.fixture()
def make_explorer(fake_space, ga_config):
    """Factory for FakeGuard explorers with test-friendly supervision."""

    def factory(
        checkpoint_dir=None,
        resume=False,
        processes=0,
        guard=None,
        supervision=None,
        config=None,
    ):
        return ParetoExplorer(
            guard or FakeGuard(),
            space=fake_space,
            config=config or ga_config,
            processes=processes,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            supervision=supervision
            or SupervisionConfig(backoff_s=0.0, poll_s=0.01),
        )

    return factory


@pytest.fixture()
def run_dir(request, tmp_path):
    """A per-test run directory for checkpoints.

    Defaults to ``tmp_path``; when ``REPRO_CHAOS_RUNDIR`` is set (the CI
    resilience job points it at a workspace path) run directories land
    there instead, so a failing job can upload them as an artifact.
    """
    base = os.environ.get("REPRO_CHAOS_RUNDIR", "").strip()
    if not base:
        return tmp_path / "run"
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.nodeid)
    path = Path(base) / safe
    path.mkdir(parents=True, exist_ok=True)
    return path


def front_key(result):
    """Order-independent, bitwise-comparable view of a Pareto front."""
    return sorted(
        (
            ind.objectives,
            ind.violation,
            ind.genome.op_select,
            ind.genome.lda_n,
            ind.genome.lda_n_iter,
            ind.genome.rws_scales,
        )
        for ind in result.pareto_front
    )
