"""Fault-plan parsing, coordinate matching, and hook behavior."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import InjectedFault, InjectedInterrupt, ResilienceError
from repro.resilience import faults
from repro.resilience.faults import FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_all_kinds_accepted(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(generation=0, kind=kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ResilienceError, match="fault kind"):
            FaultSpec(generation=0, kind="explode")


class TestFaultPlan:
    def test_match_is_coordinate_exact(self):
        spec = FaultSpec(generation=1, kind="error", individual=2, attempt=1)
        plan = FaultPlan([spec])
        assert plan.match(1, 2, 1, ("error",)) is spec
        # any differing coordinate misses
        assert plan.match(0, 2, 1, ("error",)) is None
        assert plan.match(1, 3, 1, ("error",)) is None
        assert plan.match(1, 2, 0, ("error",)) is None
        assert plan.match(1, 2, 1, ("crash",)) is None

    def test_attempt_zero_spec_lets_the_retry_through(self):
        plan = FaultPlan([FaultSpec(generation=0, kind="error", attempt=0)])
        assert plan.match(0, 0, 0, ("error",)) is not None
        assert plan.match(0, 0, 1, ("error",)) is None  # retry sails

    def test_interrupt_at(self):
        plan = FaultPlan([FaultSpec(generation=2, kind="interrupt")])
        assert plan.interrupt_at(2) is not None
        assert plan.interrupt_at(1) is None

    def test_counts(self):
        plan = FaultPlan(
            [
                FaultSpec(generation=0, kind="crash"),
                FaultSpec(generation=1, kind="crash", individual=1),
                FaultSpec(generation=1, kind="hang"),
            ]
        )
        assert plan.counts() == {"crash": 2, "hang": 1}

    def test_payload_round_trip(self):
        plan = FaultPlan(
            [
                FaultSpec(generation=1, kind="hang", individual=3,
                          attempt=2, hang_s=0.5),
                FaultSpec(generation=0, kind="interrupt"),
            ]
        )
        restored = FaultPlan.from_payload(plan.to_payload())
        assert restored.specs == plan.specs

    def test_payload_defaults(self):
        plan = FaultPlan.from_payload(
            {"faults": [{"generation": 2, "kind": "crash"}]}
        )
        assert plan.specs == [FaultSpec(generation=2, kind="crash")]

    def test_malformed_payloads_rejected(self):
        with pytest.raises(ResilienceError, match='"faults"'):
            FaultPlan.from_payload([1, 2])
        with pytest.raises(ResilienceError, match="malformed fault entry"):
            FaultPlan.from_payload({"faults": [{"kind": "crash"}]})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"faults": [{"generation": 0, "kind": "error"}]}
        ))
        assert len(FaultPlan.load(path)) == 1
        with pytest.raises(ResilienceError, match="cannot read fault plan"):
            FaultPlan.load(tmp_path / "missing.json")


class TestHooks:
    def test_install_and_clear(self):
        assert not faults.is_active()
        faults.install(FaultPlan([FaultSpec(generation=0, kind="error")]))
        assert faults.is_active()
        faults.clear()
        assert not faults.is_active()

    def test_empty_plan_stays_inactive(self):
        faults.install(FaultPlan([]))
        assert not faults.is_active()

    def test_scope_without_plan_is_a_no_op(self):
        with faults.evaluation_scope(0, 0, 0, in_worker=False):
            faults.maybe_flow_fault()

    def test_serial_crash_and_hang_degrade_to_raises(self):
        """With no worker process to kill, crash/hang become exceptions."""
        for kind in ("crash", "hang"):
            faults.install(FaultPlan([FaultSpec(generation=0, kind=kind)]))
            with pytest.raises(InjectedFault, match=kind[:4]):
                with faults.evaluation_scope(0, 0, 0, in_worker=False):
                    pass

    def test_error_fires_on_entry(self):
        faults.install(FaultPlan([FaultSpec(generation=1, kind="error",
                                            individual=2)]))
        with pytest.raises(InjectedFault, match="injected error"):
            with faults.evaluation_scope(1, 2, 0, in_worker=False):
                pass
        # other coordinates pass clean
        with faults.evaluation_scope(1, 1, 0, in_worker=False):
            pass

    def test_flow_fault_fires_only_inside_matching_scope(self):
        faults.install(FaultPlan([FaultSpec(generation=0, kind="flow-error")]))
        faults.maybe_flow_fault()  # outside any scope: no coordinate, no fire
        with faults.evaluation_scope(1, 0, 0, in_worker=False):
            faults.maybe_flow_fault()  # wrong generation
        with pytest.raises(InjectedFault, match="flow-error"):
            with faults.evaluation_scope(0, 0, 0, in_worker=False):
                faults.maybe_flow_fault()

    def test_scope_clears_coordinate_on_exit(self):
        faults.install(FaultPlan([FaultSpec(generation=0, kind="flow-error")]))
        with faults.evaluation_scope(0, 1, 0, in_worker=False):
            pass
        faults.maybe_flow_fault()  # no lingering _CTX → no fire

    def test_maybe_interrupt(self):
        faults.install(FaultPlan([FaultSpec(generation=3, kind="interrupt")]))
        faults.maybe_interrupt(2)
        with pytest.raises(InjectedInterrupt, match="generation 3"):
            faults.maybe_interrupt(3)

    def test_env_hook_installs_plan_at_import(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(
            {"faults": [{"generation": 0, "kind": "error"}]}
        ))
        repo_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ, REPRO_FAULTS=str(plan_path))
        env["PYTHONPATH"] = (
            str(repo_root / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        code = (
            "from repro.resilience import faults; "
            "import sys; sys.exit(0 if faults.is_active() else 3)"
        )
        proc = subprocess.run([sys.executable, "-c", code], env=env)
        assert proc.returncode == 0
