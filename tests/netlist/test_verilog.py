"""Round-trip tests for the structural-Verilog serialization."""

import pytest

from repro.errors import SerializationError
from repro.netlist.verilog import read_structural_verilog, write_structural_verilog
from tests.conftest import make_registered_pipeline


class TestRoundTrip:
    def test_pipeline_round_trip(self, library):
        nl = make_registered_pipeline(library, stages=3, name="rt")
        text = write_structural_verilog(nl)
        back = read_structural_verilog(text, library)
        assert back.name == nl.name
        assert back.num_instances == nl.num_instances
        assert back.num_nets == nl.num_nets
        assert back.num_ports == nl.num_ports
        back.validate()
        for inst in nl.instances:
            assert back.instance(inst.name).master.name == inst.master.name
            assert back.instance(inst.name).connections == inst.connections

    def test_clock_port_detected(self, library):
        nl = make_registered_pipeline(library, name="clkdet")
        back = read_structural_verilog(write_structural_verilog(nl), library)
        assert back.clock_nets() == {"clk"}

    def test_generated_design_round_trip(self, tiny_design, library):
        nl = tiny_design["netlist"]
        back = read_structural_verilog(write_structural_verilog(nl), library)
        back.validate()
        assert back.num_instances == nl.num_instances


class TestErrors:
    def test_missing_module_header(self, library):
        with pytest.raises(SerializationError):
            read_structural_verilog("wire x;", library)

    def test_malformed_header(self, library):
        with pytest.raises(SerializationError):
            read_structural_verilog("module broken\nendmodule", library)

    def test_unsupported_construct(self, library):
        text = "module m (a);\n  input a;\n  assign b = a;\nendmodule"
        with pytest.raises(SerializationError):
            read_structural_verilog(text, library)


class TestOutput:
    def test_text_shape(self, library):
        nl = make_registered_pipeline(library, name="shape")
        text = write_structural_verilog(nl)
        assert text.startswith("module shape (")
        assert text.rstrip().endswith("endmodule")
        assert "DFF_X1 ff0" in text
