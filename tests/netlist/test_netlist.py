"""Tests for the structural netlist model."""

import pytest

from repro.errors import NetlistError
from repro.netlist.netlist import Netlist, PortDirection
from tests.conftest import make_inverter_chain, make_registered_pipeline


class TestConstruction:
    def test_duplicate_port_rejected(self, empty_netlist):
        empty_netlist.add_port("a", PortDirection.INPUT)
        with pytest.raises(NetlistError):
            empty_netlist.add_port("a", PortDirection.OUTPUT)

    def test_duplicate_instance_rejected(self, empty_netlist):
        empty_netlist.add_instance("u1", "INV_X1")
        with pytest.raises(NetlistError):
            empty_netlist.add_instance("u1", "BUF_X1")

    def test_duplicate_net_rejected(self, empty_netlist):
        empty_netlist.add_net("n1")
        with pytest.raises(NetlistError):
            empty_netlist.add_net("n1")

    def test_double_driver_rejected(self, empty_netlist):
        nl = empty_netlist
        nl.add_instance("u1", "INV_X1")
        nl.add_instance("u2", "INV_X1")
        nl.add_net("n")
        nl.connect("u1", "ZN", "n")
        with pytest.raises(NetlistError):
            nl.connect("u2", "ZN", "n")

    def test_port_driver_conflicts_with_pin_driver(self, empty_netlist):
        nl = empty_netlist
        nl.add_port("in", PortDirection.INPUT)
        nl.add_instance("u1", "INV_X1")
        nl.add_net("n")
        nl.connect("u1", "ZN", "n")
        with pytest.raises(NetlistError):
            nl.connect_port("in", "n")

    def test_pin_double_connection_rejected(self, empty_netlist):
        nl = empty_netlist
        nl.add_instance("u1", "INV_X1")
        nl.add_net("a")
        nl.add_net("b")
        nl.connect("u1", "A", "a")
        with pytest.raises(NetlistError):
            nl.connect("u1", "A", "b")

    def test_unknown_lookups_raise(self, empty_netlist):
        with pytest.raises(NetlistError):
            empty_netlist.instance("ghost")
        with pytest.raises(NetlistError):
            empty_netlist.net("ghost")
        with pytest.raises(NetlistError):
            empty_netlist.port("ghost")


class TestQueries:
    def test_counts(self, chain_netlist):
        assert chain_netlist.num_instances == 4
        assert chain_netlist.num_ports == 2
        # in + 3 internal + out
        assert chain_netlist.num_nets == 5

    def test_fanin_fanout(self, chain_netlist):
        assert chain_netlist.fanin_instances("inv1") == ["inv0"]
        assert chain_netlist.fanout_instances("inv1") == ["inv2"]
        assert chain_netlist.fanin_instances("inv0") == []

    def test_clock_nets(self, pipeline_netlist):
        assert pipeline_netlist.clock_nets() == {"clk"}

    def test_sequential_instances(self, pipeline_netlist):
        seqs = {i.name for i in pipeline_netlist.sequential_instances()}
        assert seqs == {"ff0", "ff1", "ff2"}

    def test_has_instance(self, chain_netlist):
        assert chain_netlist.has_instance("inv0")
        assert not chain_netlist.has_instance("nope")


class TestValidation:
    def test_undriven_net_rejected(self, library):
        nl = Netlist("bad", library)
        nl.add_instance("u1", "INV_X1")
        nl.add_net("floating")
        nl.connect("u1", "A", "floating")
        nl.add_net("out")
        nl.connect("u1", "ZN", "out")
        nl.add_port("out", PortDirection.OUTPUT)
        nl.connect_port("out", "out")
        with pytest.raises(NetlistError, match="no driver"):
            nl.validate()

    def test_sinkless_net_rejected(self, library):
        nl = Netlist("bad", library)
        nl.add_port("in", PortDirection.INPUT)
        nl.add_net("in")
        nl.connect_port("in", "in")
        with pytest.raises(NetlistError, match="no sinks"):
            nl.validate()

    def test_unconnected_pin_rejected(self, library):
        nl = Netlist("bad", library)
        nl.add_port("in", PortDirection.INPUT)
        nl.add_net("in")
        nl.connect_port("in", "in")
        nl.add_instance("u1", "NAND2_X1")
        nl.connect("u1", "A1", "in")
        nl.add_net("out")
        nl.connect("u1", "ZN", "out")
        nl.add_port("out", PortDirection.OUTPUT)
        nl.connect_port("out", "out")
        with pytest.raises(NetlistError, match="unconnected"):
            nl.validate()


class TestCopyAndSignature:
    def test_copy_is_deep_and_equal_shape(self, pipeline_netlist):
        cp = pipeline_netlist.copy()
        assert cp.num_instances == pipeline_netlist.num_instances
        assert cp.num_nets == pipeline_netlist.num_nets
        assert cp.num_ports == pipeline_netlist.num_ports
        cp.validate()
        # Mutating the copy leaves the original untouched.
        cp.add_instance("extra", "INV_X1")
        assert not pipeline_netlist.has_instance("extra")

    def test_signature_changes_on_mutation(self, library):
        nl = make_inverter_chain(library, name="sig")
        before = nl.signature()
        nl.add_net("fresh")
        assert nl.signature() != before

    def test_signature_stable_without_mutation(self, chain_netlist):
        assert chain_netlist.signature() == chain_netlist.signature()

    def test_copy_preserves_connectivity(self, pipeline_netlist):
        cp = pipeline_netlist.copy()
        for inst in pipeline_netlist.instances:
            assert cp.instance(inst.name).connections == inst.connections
        assert cp.clock_nets() == pipeline_netlist.clock_nets()
