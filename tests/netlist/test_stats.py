"""Tests for netlist statistics."""

import pytest

from repro.netlist.stats import compute_stats
from tests.conftest import make_inverter_chain, make_registered_pipeline


class TestStats:
    def test_chain_depth(self, library):
        nl = make_inverter_chain(library, length=5, name="st1")
        stats = compute_stats(nl)
        assert stats.logic_depth == 5
        assert stats.num_instances == 5
        assert stats.num_sequential == 0
        assert stats.cell_histogram == {"INV_X1": 5}

    def test_pipeline_depth_broken_by_ffs(self, library):
        nl = make_registered_pipeline(library, stages=4, name="st2")
        stats = compute_stats(nl)
        # Each combinational segment is a single inverter.
        assert stats.logic_depth == 1
        assert stats.num_sequential == 4

    def test_fanout_stats(self, tiny_design):
        stats = compute_stats(tiny_design["netlist"])
        assert stats.max_fanout >= stats.mean_fanout > 0
        assert stats.num_instances == tiny_design["netlist"].num_instances

    def test_generated_depth_tracks_cone_depth(self, library):
        from repro.bench.generators import GeneratorParams, generate_design

        shallow = compute_stats(
            generate_design(
                "sh", library,
                GeneratorParams(n_state=12, n_key=8, cone_depth=2, seed=1),
            )
        )
        deep = compute_stats(
            generate_design(
                "dp", library,
                GeneratorParams(n_state=12, n_key=8, cone_depth=10, seed=1),
            )
        )
        assert deep.logic_depth > shallow.logic_depth
