"""Tests for the routing grid."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.route.grid import RoutingGrid


@pytest.fixture()
def grid(tech):
    return RoutingGrid(tech, Rect(0, 0, 30.0, 30.0))


class TestGeometry:
    def test_dimensions(self, grid):
        assert grid.nx >= 1 and grid.ny >= 1
        assert grid.capacity.shape == (10, grid.nx, grid.ny)

    def test_gcell_of_clamps(self, grid):
        assert grid.gcell_of(-5, -5) == (0, 0)
        assert grid.gcell_of(1e9, 1e9) == (grid.nx - 1, grid.ny - 1)

    def test_gcells_in_rect(self, grid):
        cells = list(grid.gcells_in_rect(Rect(0, 0, 30, 30)))
        assert len(cells) == grid.nx * grid.ny

    def test_capacity_direction_dependent(self, grid, tech):
        # H layers: tracks derived from gcell height; V: from width.
        for layer in tech.layers:
            cap = grid.capacity[layer.index - 1, 0, 0]
            extent = grid.gcell_h if layer.direction == "H" else grid.gcell_w
            assert cap == pytest.approx(extent / layer.track_pitch * 0.75)


class TestUsageAccounting:
    def test_add_remove_symmetry(self, grid):
        cells = [(0, 0), (1, 0)]
        grid.add_segment(3, cells, 1.5)
        assert grid.usage[2, 0, 0] == 1.5
        grid.remove_segment(3, cells, 1.5)
        assert grid.usage[2, 0, 0] == 0.0

    def test_overflow_counting(self, grid):
        cap = grid.capacity[0, 0, 0]
        grid.add_segment(1, [(0, 0)], cap + 1)
        assert grid.num_overflows() == 1
        assert grid.num_overflows(slack=2.0) == 0
        assert grid.total_overflow() == pytest.approx(1.0)

    def test_segment_congestion(self, grid):
        cap = grid.capacity[0, 0, 0]
        assert grid.segment_congestion(1, [(0, 0)], cap / 2) == pytest.approx(0.5)


class TestFreeTracks:
    def test_empty_grid_full_free(self, grid):
        assert grid.free_tracks_total() == pytest.approx(grid.capacity.sum())

    def test_free_tracks_over_region_prorated(self, grid):
        total = grid.free_tracks_over(grid.core)
        half = grid.free_tracks_over(
            Rect(0, 0, grid.core.width / 2, grid.core.height)
        )
        assert half == pytest.approx(total / 2, rel=0.15)

    def test_usage_reduces_free_tracks(self, grid):
        before = grid.free_tracks_total()
        grid.add_segment(3, [(0, 0), (1, 0)], 2.0)
        assert grid.free_tracks_total() == pytest.approx(before - 4.0)

    def test_overflow_does_not_go_negative(self, grid):
        cap = grid.capacity[2, 0, 0]
        grid.add_segment(3, [(0, 0)], cap + 100)
        rect = grid.gcell_rect(0, 0)
        assert grid.free_tracks_over(rect) >= 0.0
