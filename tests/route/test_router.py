"""Tests for the global router."""

import pytest

from repro.errors import RoutingError
from repro.geometry import Point, half_perimeter_wirelength
from repro.route.ndr import NonDefaultRule
from repro.route.router import (
    _spanning_pairs,
    assign_layer_tier,
    global_route,
)


class TestSpanningPairs:
    def test_two_points_one_pair(self):
        pairs = _spanning_pairs([Point(0, 0), Point(5, 5)])
        assert len(pairs) == 1

    def test_n_points_n_minus_1_pairs(self):
        pts = [Point(i, i % 3) for i in range(8)]
        assert len(_spanning_pairs(pts)) == 7

    def test_large_fanout_chain(self):
        pts = [Point(i % 10, i // 10) for i in range(40)]
        pairs = _spanning_pairs(pts)
        assert len(pairs) == 39

    def test_single_point_empty(self):
        assert _spanning_pairs([Point(0, 0)]) == []


class TestLayerTier:
    def test_short_nets_low(self):
        h, v = assign_layer_tier(1.0, False, 10, core_scale=100.0)
        assert (h, v) == (1, 2)

    def test_long_nets_high(self):
        h, v = assign_layer_tier(90.0, False, 10, core_scale=100.0)
        assert (h, v) == (9, 10)

    def test_clock_on_top(self):
        assert assign_layer_tier(5.0, True, 10, core_scale=100.0) == (9, 10)

    def test_scale_invariance(self):
        small = assign_layer_tier(5.0, False, 10, core_scale=50.0)
        large = assign_layer_tier(50.0, False, 10, core_scale=500.0)
        assert small == large

    def test_thin_stack_clamped(self):
        h, v = assign_layer_tier(90.0, False, 4, core_scale=100.0)
        assert h <= 4 and v <= 4


class TestGlobalRoute:
    def test_routes_every_multi_pin_net(self, small_layout):
        result = global_route(small_layout)
        for net in small_layout.netlist.nets:
            if len(small_layout.net_pin_points(net.name)) >= 2:
                assert net.name in result.routes

    def test_wirelength_lower_bounded_by_hpwl(self, small_layout):
        result = global_route(small_layout)
        for name, route in result.routes.items():
            hpwl = half_perimeter_wirelength(
                small_layout.net_pin_points(name)
            )
            assert route.wirelength >= hpwl - 1e-6

    def test_parasitics_positive(self, small_layout):
        result = global_route(small_layout)
        for name in result.routes:
            r, c = result.net_parasitics(name)
            assert r >= 0 and c >= 0

    def test_unrouted_net_parasitics_zero(self, small_layout):
        result = global_route(small_layout)
        assert result.net_parasitics("ghost") == (0.0, 0.0)

    def test_usage_conservation(self, tiny_design, tech):
        """Total committed usage equals the sum over route segments."""
        layout = tiny_design["layout"]
        result = global_route(layout)
        expected = 0.0
        for route in result.routes.values():
            for seg in route.segments:
                expected += len(seg.gcells) * seg.demand
        assert result.grid.usage.sum() == pytest.approx(expected)

    def test_ndr_mismatch_rejected(self, small_layout):
        with pytest.raises(RoutingError):
            global_route(small_layout, ndr=NonDefaultRule.default(3))

    def test_wider_ndr_consumes_more_tracks(self, tiny_design):
        layout = tiny_design["layout"]
        base = global_route(layout)
        wide = global_route(
            layout, ndr=NonDefaultRule.from_list([1.5] * 10)
        )
        assert wide.grid.usage.sum() > base.grid.usage.sum() * 1.2

    def test_wider_ndr_lowers_resistance(self, tiny_design):
        layout = tiny_design["layout"]
        base = global_route(layout)
        wide = global_route(layout, ndr=NonDefaultRule.from_list([1.5] * 10))
        total_r_base = sum(r.resistance for r in base.routes.values())
        total_r_wide = sum(r.resistance for r in wide.routes.values())
        assert total_r_wide < total_r_base

    def test_deterministic(self, tiny_design):
        layout = tiny_design["layout"]
        a = global_route(layout)
        b = global_route(layout)
        assert a.total_wirelength == pytest.approx(b.total_wirelength)
        assert (a.grid.usage == b.grid.usage).all()

    def test_congestion_factor_bounds(self, tiny_design):
        result = tiny_design["routing"]
        for name in list(result.routes)[:50]:
            k = result.congestion_factor(name)
            assert 1.0 <= k < 2.0
