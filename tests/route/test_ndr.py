"""Tests for non-default routing rules."""

import pytest

from repro.errors import RoutingError
from repro.route.ndr import ALLOWED_SCALES, NonDefaultRule


class TestNonDefaultRule:
    def test_default_is_identity(self):
        ndr = NonDefaultRule.default(10)
        assert ndr.is_default()
        assert ndr.num_layers == 10
        assert all(ndr.scale(i) == 1.0 for i in range(1, 11))

    def test_from_list(self):
        ndr = NonDefaultRule.from_list([1.0, 1.2, 1.5])
        assert ndr.scale(2) == 1.2
        assert not ndr.is_default()

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            NonDefaultRule(scales=())

    def test_out_of_range_rejected(self):
        with pytest.raises(RoutingError):
            NonDefaultRule.from_list([0.5])
        with pytest.raises(RoutingError):
            NonDefaultRule.from_list([5.0])

    def test_layer_index_bounds(self):
        ndr = NonDefaultRule.default(3)
        with pytest.raises(RoutingError):
            ndr.scale(0)
        with pytest.raises(RoutingError):
            ndr.scale(4)

    def test_track_demand_equals_scale(self):
        ndr = NonDefaultRule.from_list([1.5, 1.0])
        assert ndr.track_demand(1) == 1.5

    def test_resistance_drops_with_width(self):
        ndr = NonDefaultRule.from_list([1.5])
        assert ndr.resistance_factor(1) == pytest.approx(1 / 1.5)

    def test_capacitance_grows_mildly_with_width(self):
        ndr = NonDefaultRule.from_list([1.5])
        assert 1.0 < ndr.capacitance_factor(1) < 1.5
        assert NonDefaultRule.from_list([1.0]).capacitance_factor(1) == pytest.approx(1.0)

    def test_paper_candidate_values(self):
        assert ALLOWED_SCALES == (1.0, 1.2, 1.5)
