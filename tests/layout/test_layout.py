"""Tests for the Layout class."""

import pytest

from repro.errors import LayoutError
from repro.geometry import Point, Rect
from repro.layout.blockage import PlacementBlockage
from repro.layout.layout import Layout


class TestGeometry:
    def test_core_dimensions(self, small_layout, tech):
        core = small_layout.core
        assert core.width == pytest.approx(60 * tech.site_width)
        assert core.height == pytest.approx(4 * tech.row_height)
        assert small_layout.total_sites == 240

    def test_site_rect(self, small_layout, tech):
        r = small_layout.site_rect(1, 2)
        assert r.xlo == pytest.approx(2 * tech.site_width)
        assert r.ylo == pytest.approx(tech.row_height)

    def test_point_to_site_clamps(self, small_layout):
        assert small_layout.point_to_site(Point(-5, -5)) == (0, 0)
        row, site = small_layout.point_to_site(Point(1e9, 1e9))
        assert row == 3 and site == 59


class TestPlacementOps:
    def test_place_unplace(self, chain_netlist, tech):
        layout = Layout(chain_netlist, tech, num_rows=2, sites_per_row=30)
        layout.place("inv0", 0, 3)
        assert layout.is_placed("inv0")
        pl = layout.unplace("inv0")
        assert pl.row == 0 and pl.start == 3
        assert not layout.is_placed("inv0")

    def test_double_place_rejected(self, chain_netlist, tech):
        layout = Layout(chain_netlist, tech, num_rows=2, sites_per_row=30)
        layout.place("inv0", 0, 3)
        with pytest.raises(LayoutError):
            layout.place("inv0", 1, 3)

    def test_fixed_cell_cannot_move(self, chain_netlist, tech):
        layout = Layout(chain_netlist, tech, num_rows=2, sites_per_row=30)
        layout.place("inv0", 0, 3)
        layout.fixed.add("inv0")
        with pytest.raises(LayoutError):
            layout.move_in_row("inv0", 10)
        with pytest.raises(LayoutError):
            layout.unplace("inv0")

    def test_move_to_other_row(self, chain_netlist, tech):
        layout = Layout(chain_netlist, tech, num_rows=2, sites_per_row=30)
        layout.place("inv0", 0, 3)
        layout.move_to("inv0", 1, 7)
        assert layout.placement("inv0").row == 1

    def test_cell_rect_and_center(self, small_layout, tech):
        rect = small_layout.cell_rect("inv0")
        assert rect.width == pytest.approx(2 * tech.site_width)  # INV_X1
        assert small_layout.cell_center("inv0") == rect.center

    def test_unplaced_queries_raise(self, chain_netlist, tech):
        layout = Layout(chain_netlist, tech, num_rows=2, sites_per_row=30)
        with pytest.raises(LayoutError):
            layout.placement("inv0")
        with pytest.raises(LayoutError):
            layout.cell_rect("inv0")


class TestAreaQueries:
    def test_utilization(self, small_layout):
        used = 4 * 2  # four INV_X1
        assert small_layout.utilization() == pytest.approx(used / 240)

    def test_instances_in_rect(self, small_layout):
        rect = small_layout.cell_rect("inv0").inflated(0.01)
        assert "inv0" in small_layout.instances_in_rect(rect)

    def test_region_density_full_core(self, small_layout):
        dens = small_layout.region_density(small_layout.core)
        assert dens == pytest.approx(small_layout.utilization())

    def test_rect_to_row_span(self, small_layout, tech):
        spans = small_layout.rect_to_row_span(
            Rect(0, 0, 10 * tech.site_width, tech.row_height)
        )
        assert len(spans) == 1
        row, iv = spans[0]
        assert row == 0 and (iv.lo, iv.hi) == (0, 10)

    def test_net_pin_points(self, small_layout):
        pts = small_layout.net_pin_points("n0")  # inv0 -> inv1
        assert len(pts) == 2


class TestBlockages:
    def test_add_and_density_cap(self, small_layout):
        small_layout.add_blockage(
            PlacementBlockage("b", Rect(0, 0, 5, 2), max_density=0.4)
        )
        assert small_layout.blockage_density_cap(0, 1) == 0.4
        assert small_layout.blockage_density_cap(3, 50) == 1.0

    def test_duplicate_blockage_rejected(self, small_layout):
        small_layout.add_blockage(
            PlacementBlockage("b", Rect(0, 0, 5, 2), max_density=0.4)
        )
        with pytest.raises(LayoutError):
            small_layout.add_blockage(
                PlacementBlockage("b", Rect(0, 0, 1, 1), max_density=0.9)
            )

    def test_clear_blockages(self, small_layout):
        small_layout.add_blockage(
            PlacementBlockage("b", Rect(0, 0, 5, 2), max_density=0.0)
        )
        small_layout.clear_blockages()
        assert not small_layout.blockages


class TestCloneAndValidate:
    def test_clone_is_independent(self, small_layout):
        clone = small_layout.clone()
        clone.move_in_row("inv0", 0)
        assert small_layout.placement("inv0").start == 5
        assert clone.placement("inv0").start == 0
        small_layout.validate()
        clone.validate()

    def test_clone_shares_netlist(self, small_layout):
        clone = small_layout.clone()
        assert clone.netlist is small_layout.netlist

    def test_validate_catches_corruption(self, small_layout):
        # Desynchronize the placement map on purpose.
        small_layout._placements["inv0"] = type(
            small_layout.placement("inv1")
        )(row=3, start=55)
        with pytest.raises(LayoutError):
            small_layout.validate()

    def test_gap_graph_total_weight(self, small_layout):
        total_free = small_layout.total_sites - small_layout.used_sites()
        graph = small_layout.gap_graph()
        assert sum(c.weight for c in graph.components()) == total_free
