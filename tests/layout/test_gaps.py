"""Tests for the gap graph, cross-checked against a networkx DFS oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Interval
from repro.layout.gaps import Gap, GapGraph


def oracle_components(rows_gaps):
    """Reference implementation with networkx connected components."""
    g = nx.Graph()
    all_gaps = [gap for row in rows_gaps for gap in row]
    g.add_nodes_from(all_gaps)
    for r in range(len(rows_gaps) - 1):
        for a in rows_gaps[r]:
            for b in rows_gaps[r + 1]:
                if a.x_overlaps(b):
                    g.add_edge(a, b)
    return [set(c) for c in nx.connected_components(g)]


class TestGap:
    def test_weight(self):
        assert Gap(0, 3, 10).weight == 7

    def test_x_overlap(self):
        assert Gap(0, 0, 5).x_overlaps(Gap(1, 4, 8))
        assert not Gap(0, 0, 5).x_overlaps(Gap(1, 5, 8))  # touching != overlap


class TestGapGraph:
    def test_vertical_merge(self):
        rows = [[Gap(0, 0, 10)], [Gap(1, 5, 15)]]
        graph = GapGraph(rows)
        comps = graph.components()
        assert len(comps) == 1
        assert comps[0].weight == 20

    def test_touching_columns_do_not_merge(self):
        rows = [[Gap(0, 0, 10)], [Gap(1, 10, 20)]]
        graph = GapGraph(rows)
        assert len(graph.components()) == 2

    def test_non_adjacent_rows_do_not_merge(self):
        rows = [[Gap(0, 0, 10)], [], [Gap(2, 0, 10)]]
        graph = GapGraph(rows)
        assert len(graph.components()) == 2

    def test_component_weight_of(self):
        g1 = Gap(0, 0, 10)
        g2 = Gap(1, 5, 15)
        graph = GapGraph([[g1], [g2]])
        assert graph.component_weight_of(g1) == 20
        assert graph.same_component(g1, g2)

    def test_exploitable_threshold(self):
        rows = [[Gap(0, 0, 10), Gap(0, 30, 35)], [Gap(1, 5, 15)]]
        graph = GapGraph(rows)
        assert len(graph.exploitable_components(20)) == 1
        assert len(graph.exploitable_components(5)) == 2
        assert len(graph.exploitable_components(21)) == 0

    def test_from_free_intervals(self):
        graph = GapGraph.from_free_intervals(
            [[Interval(0, 5)], [Interval(3, 8)]]
        )
        assert len(graph.components()) == 1
        assert graph.components()[0].weight == 10

    def test_component_rows_and_bounds(self):
        rows = [[Gap(0, 2, 10)], [Gap(1, 8, 20)]]
        comp = GapGraph(rows).components()[0]
        assert comp.rows() == [0, 1]
        assert comp.bounding_sites() == (2, 20)

    def test_row_gaps(self):
        g1, g2 = Gap(0, 0, 5), Gap(0, 10, 15)
        graph = GapGraph([[g1, g2]])
        assert graph.row_gaps(0) == [g1, g2]


@settings(max_examples=60)
@given(
    st.lists(  # per row: list of sorted disjoint gaps
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(1, 8)), max_size=5
        ),
        min_size=1,
        max_size=6,
    )
)
def test_property_union_find_matches_dfs_oracle(raw):
    rows_gaps = []
    for r, row in enumerate(raw):
        cursor = 0
        gaps = []
        for offset, width in sorted(row):
            lo = max(cursor, offset)
            hi = lo + width
            if hi > 60:
                continue
            gaps.append(Gap(r, lo, hi))
            cursor = hi + 1  # enforce disjoint, non-adjacent gaps
        rows_gaps.append(gaps)
    graph = GapGraph(rows_gaps)
    ours = [frozenset(c.gaps) for c in graph.components()]
    oracle = [frozenset(c) for c in oracle_components(rows_gaps)]
    assert sorted(ours, key=lambda s: sorted((g.row, g.lo) for g in s)) == sorted(
        oracle, key=lambda s: sorted((g.row, g.lo) for g in s)
    )


@given(
    st.lists(
        st.lists(st.tuples(st.integers(0, 30), st.integers(1, 6)), max_size=4),
        min_size=1,
        max_size=5,
    )
)
def test_property_components_partition_gaps(raw):
    rows_gaps = []
    for r, row in enumerate(raw):
        cursor = 0
        gaps = []
        for offset, width in sorted(row):
            lo = max(cursor, offset)
            gaps.append(Gap(r, lo, lo + width))
            cursor = lo + width + 1
        rows_gaps.append(gaps)
    graph = GapGraph(rows_gaps)
    all_gaps = [g for row in rows_gaps for g in row]
    comp_gaps = [g for c in graph.components() for g in c.gaps]
    assert sorted(comp_gaps, key=lambda g: (g.row, g.lo)) == sorted(
        all_gaps, key=lambda g: (g.row, g.lo)
    )
    total = sum(c.weight for c in graph.components())
    assert total == sum(g.weight for g in all_gaps)
