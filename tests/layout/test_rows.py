"""Unit + property tests for row occupancy."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LayoutError
from repro.geometry import Interval
from repro.layout.rows import CoreRow, RowOccupancy


@pytest.fixture()
def row():
    return RowOccupancy(CoreRow(index=0, origin_x=0.0, y=0.0, num_sites=50))


class TestPlacement:
    def test_place_and_query(self, row):
        row.place("a", 5, 3)
        assert row.occupant_at(5).name == "a"
        assert row.occupant_at(7).name == "a"
        assert row.occupant_at(8) is None
        assert row.used_sites() == 3

    def test_overlap_rejected(self, row):
        row.place("a", 5, 3)
        with pytest.raises(LayoutError):
            row.place("b", 7, 2)
        assert row.can_place(8, 2)
        assert not row.can_place(4, 2)

    def test_out_of_row_rejected(self, row):
        with pytest.raises(LayoutError):
            row.place("a", 48, 5)
        with pytest.raises(LayoutError):
            row.place("b", -1, 2)

    def test_remove(self, row):
        row.place("a", 5, 3)
        removed = row.remove("a")
        assert removed.start == 5
        assert row.used_sites() == 0
        with pytest.raises(LayoutError):
            row.remove("a")

    def test_move(self, row):
        row.place("a", 5, 3)
        row.place("b", 20, 3)
        row.move("a", 10)
        assert row.occupant_at(10).name == "a"
        assert row.occupant_at(5) is None

    def test_move_collision_restores(self, row):
        row.place("a", 5, 3)
        row.place("b", 10, 3)
        with pytest.raises(LayoutError):
            row.move("a", 9)
        # a must still be in place after the failed move
        assert row.occupant_at(5).name == "a"
        row.check_invariants()


class TestNeighborQueries:
    def test_cell_right_of(self, row):
        row.place("a", 5, 3)
        row.place("b", 20, 3)
        assert row.cell_right_of(0).name == "a"
        assert row.cell_right_of(8).name == "b"
        assert row.cell_right_of(30) is None

    def test_cell_left_of(self, row):
        row.place("a", 5, 3)
        row.place("b", 20, 3)
        assert row.cell_left_of(20).name == "a"
        assert row.cell_left_of(40).name == "b"
        assert row.cell_left_of(5) is None

    def test_cell_left_of_adjacent(self, row):
        row.place("a", 5, 3)
        assert row.cell_left_of(8).name == "a"


class TestFreeIntervals:
    def test_empty_row(self, row):
        assert row.free_intervals() == [Interval(0, 50)]
        assert row.largest_gap() == 50

    def test_gaps_between_cells(self, row):
        row.place("a", 5, 3)
        row.place("b", 20, 5)
        assert row.free_intervals() == [
            Interval(0, 5),
            Interval(8, 20),
            Interval(25, 50),
        ]
        assert row.free_sites() == 50 - 8

    def test_full_row(self, row):
        row.place("a", 0, 50)
        assert row.free_intervals() == []
        assert row.largest_gap() == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 45), st.integers(1, 5)),
        max_size=12,
    )
)
def test_property_no_overlap_after_any_placement_sequence(ops):
    """Placing whenever legal keeps the row consistent and gap math exact."""
    row = RowOccupancy(CoreRow(index=0, origin_x=0.0, y=0.0, num_sites=50))
    placed = 0
    for k, (start, width) in enumerate(ops):
        if row.can_place(start, width):
            row.place(f"c{k}", start, width)
            placed += width
    row.check_invariants()
    assert row.used_sites() == placed
    assert sum(len(g) for g in row.free_intervals()) == 50 - placed
