"""Property: gap accounting closes — free gaps + cell widths = row width.

The security scan's exploitable-region sites come straight from the gap
extraction, so a single lost or double-counted site silently corrupts
the Security(L) objective.  Hypothesis shakes random placements and
checks the per-row conservation law plus the basic gap well-formedness
invariants (sorted, disjoint, nonempty).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.layout.gaps import GapGraph
from repro.layout.layout import Layout
from repro.netlist.netlist import Netlist
from repro.tech.library import nangate45_library
from repro.tech.technology import nangate45_like

LIB = nangate45_library()
TECH = nangate45_like()

NUM_ROWS = 5
SITES_PER_ROW = 48

placements_strategy = st.lists(
    st.tuples(
        st.integers(0, NUM_ROWS - 1),
        st.integers(0, SITES_PER_ROW - 1),
        st.sampled_from(["INV_X1", "NAND2_X1", "BUF_X1", "DFF_X1"]),
    ),
    min_size=0,
    max_size=40,
)


def _build(placements):
    nl = Netlist("gap_prop", LIB)
    layout = Layout(nl, TECH, num_rows=NUM_ROWS, sites_per_row=SITES_PER_ROW)
    for k, (row, site, master) in enumerate(placements):
        name = f"c{k}"
        nl.add_instance(name, master)
        width = nl.instance(name).width_sites
        if site + width <= SITES_PER_ROW and layout.occupancy[row].can_place(
            site, width
        ):
            layout.place(name, row, site)
    return layout


@settings(max_examples=60, deadline=None)
@given(placements_strategy)
def test_gap_accounting_sums_to_row_width(placements):
    layout = _build(placements)
    widths = {
        name: layout.netlist.instance(name).width_sites
        for name in layout.placements
    }
    for row, intervals in enumerate(layout.free_intervals_per_row()):
        occupied = sum(
            widths[name]
            for name, p in layout.placements.items()
            if p.row == row
        )
        free = sum(len(iv) for iv in intervals)
        assert free + occupied == layout.sites_per_row, (
            f"row {row}: {free} free + {occupied} occupied "
            f"!= {layout.sites_per_row}"
        )
        # Well-formed: sorted, disjoint, nonempty.
        for iv in intervals:
            assert iv.lo < iv.hi
        for a, b in zip(intervals, intervals[1:]):
            assert a.hi < b.lo


@settings(max_examples=60, deadline=None)
@given(placements_strategy)
def test_gap_graph_weight_matches_free_sites(placements):
    layout = _build(placements)
    graph = GapGraph.from_free_intervals(layout.free_intervals_per_row())
    total_weight = sum(c.weight for c in graph.components())
    free_sites = layout.total_sites - layout.used_sites()
    assert total_weight == free_sites
