"""Round-trip tests for the DEF-like serialization."""

import pytest

from repro.errors import SerializationError
from repro.geometry import Rect
from repro.layout.blockage import PlacementBlockage
from repro.layout.def_io import (
    layout_from_def,
    layout_to_def,
    load_def,
    save_def,
)


class TestRoundTrip:
    def test_simple_round_trip(self, small_layout, tech):
        small_layout.fixed.add("inv1")
        small_layout.add_blockage(
            PlacementBlockage("blk", Rect(0.0, 0.0, 3.0, 2.8), max_density=0.5)
        )
        text = layout_to_def(small_layout)
        back = layout_from_def(text, small_layout.netlist, tech)
        assert back.placements == small_layout.placements
        assert back.fixed == {"inv1"}
        assert "blk" in back.blockages
        assert back.blockages["blk"].max_density == 0.5
        assert back.port_positions == small_layout.port_positions

    def test_file_round_trip(self, small_layout, tech, tmp_path):
        path = tmp_path / "test.def"
        save_def(small_layout, path)
        back = load_def(path, small_layout.netlist, tech)
        assert back.placements == small_layout.placements

    def test_generated_design_round_trip(self, tiny_design, tech):
        layout = tiny_design["layout"]
        back = layout_from_def(layout_to_def(layout), layout.netlist, tech)
        assert back.placements == layout.placements
        back.validate()


class TestErrors:
    def test_wrong_design_name(self, small_layout, tech, library):
        from repro.netlist.netlist import Netlist

        other = Netlist("other", library)
        with pytest.raises(SerializationError):
            layout_from_def(layout_to_def(small_layout), other, tech)

    def test_missing_header(self, small_layout, tech):
        with pytest.raises(SerializationError):
            layout_from_def("garbage", small_layout.netlist, tech)

    def test_malformed_core(self, small_layout, tech):
        with pytest.raises(SerializationError):
            layout_from_def(
                "DESIGN chain\nCORE ROWS x SITES y\n", small_layout.netlist, tech
            )

    def test_unknown_record(self, small_layout, tech):
        text = "DESIGN chain\nCORE ROWS 4 SITES 60\nBOGUS x\nEND DESIGN"
        with pytest.raises(SerializationError):
            layout_from_def(text, small_layout.netlist, tech)
