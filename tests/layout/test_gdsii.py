"""Tests for the GDSII stream writer."""

import struct

import pytest

from repro.layout.gdsii import (
    DEVICE_LAYER,
    layout_to_gdsii,
    parse_structure_names,
    save_gdsii,
)


class TestGdsiiStream:
    def test_header_and_trailer(self, small_layout):
        stream = layout_to_gdsii(small_layout)
        # HEADER record: length 6, type 0x0002, version 600
        length, rec_type, version = struct.unpack(">HHh", stream[:6])
        assert (length, rec_type, version) == (6, 0x0002, 600)
        # last record is ENDLIB
        assert stream[-2:] == struct.pack(">H", 0x0400)[-2:] or True
        assert struct.unpack(">HH", stream[-4:]) == (4, 0x0400)

    def test_structures_cover_masters_and_top(self, small_layout):
        names = parse_structure_names(layout_to_gdsii(small_layout))
        assert "TOP" in names
        assert "INV_X1" in names

    def test_deterministic(self, small_layout):
        assert layout_to_gdsii(small_layout) == layout_to_gdsii(small_layout)

    def test_all_records_even_length(self, small_layout):
        stream = layout_to_gdsii(small_layout)
        i = 0
        while i < len(stream):
            (length,) = struct.unpack(">H", stream[i : i + 2])
            assert length >= 4 and length % 2 == 0
            i += length
        assert i == len(stream)

    def test_save(self, small_layout, tmp_path):
        path = tmp_path / "chip.gds"
        save_gdsii(small_layout, path)
        assert path.stat().st_size > 100

    def test_generated_design_stream(self, tiny_design):
        stream = layout_to_gdsii(tiny_design["layout"])
        names = parse_structure_names(stream)
        assert "TOP" in names
        assert "DFF_X1" in names
        # one SREF per placed instance: stream grows with design size
        assert len(stream) > 3_000
