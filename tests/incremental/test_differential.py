"""Differential harness: incremental evaluation vs the full-recompute oracle.

Every layer of :mod:`repro.incremental` promises *exact* equality with a
fresh recompute — not tolerance-based closeness.  These tests drive
randomized ECO sequences (cell moves + routing-width scale changes)
through the :class:`~repro.incremental.engine.DeltaEvaluator` and the
incremental :class:`~repro.core.flow.GDSIIGuard` path, and compare every
observable output (routes, grid usage, arrival/required times, endpoint
slacks, exploitable regions, flow objectives) bitwise against the oracle.

The fast subset keeps CI snappy; the ``slow``-marked bulk tests push the
sequence count past 200 across three independently generated designs.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.generators import GeneratorParams, generate_design
from repro.core.flow import GDSIIGuard
from repro.core.params import (
    LDA_ITER_CHOICES,
    LDA_N_CHOICES,
    RWS_SCALE_CHOICES,
    FlowConfig,
)
from repro.incremental.engine import DeltaEvaluator
from repro.lint import run_lint
from repro.place.global_place import GlobalPlacementSpec, global_place
from repro.route.ndr import NonDefaultRule
from repro.route.router import global_route
from repro.security.assets import annotate_key_assets
from repro.security.exploitable import find_exploitable_regions
from repro.tech.library import nangate45_library
from repro.tech.technology import nangate45_like
from repro.timing.constraints import TimingConstraints
from repro.timing.sta import run_sta

#: Generator seeds for the three independent differential designs.
DESIGN_SEEDS = (7, 19, 31)

#: Exploitable-region threshold small enough that tiny designs have
#: nonzero regions (the default of 20 sites would report nothing).
THRESH_ER = 5

#: Tight clock so the tiny designs carry real negative slack and the
#: TNS/WNS comparison is not trivially 0 == 0.
CLOCK_PERIOD = 0.9


def _build(seed: int):
    """One tiny placed+routed design keyed by generator seed."""
    library = nangate45_library()
    tech = nangate45_like(num_layers=10)
    params = GeneratorParams(
        n_state=12, n_key=8, cone_inputs=3, cone_depth=3,
        n_inputs=8, n_outputs=8, seed=seed,
    )
    netlist = generate_design(f"diff{seed}", library, params)
    assets = annotate_key_assets(netlist)
    layout = global_place(
        netlist,
        tech,
        GlobalPlacementSpec(
            target_utilization=0.6, seed=seed, clustered=tuple(assets)
        ),
    )
    constraints = TimingConstraints(clock_period=CLOCK_PERIOD)
    return {
        "netlist": netlist,
        "tech": tech,
        "layout": layout,
        "constraints": constraints,
        "assets": assets,
    }


@pytest.fixture(scope="module", params=DESIGN_SEEDS)
def diff_design(request):
    """Module-cached differential design, parametrized over seeds."""
    return _build(request.param)


# ---------------------------------------------------------------------------
# Canonical comparison keys — exact, order-independent.
# ---------------------------------------------------------------------------


def _routing_key(routing):
    routes = {
        name: [
            (s.layer, tuple(s.gcells), s.length_um, s.demand)
            for s in r.segments
        ]
        for name, r in routing.routes.items()
    }
    parasitics = {
        name: (r.resistance, r.capacitance)
        for name, r in routing.routes.items()
    }
    return routes, parasitics, routing.grid.usage.tobytes()


def _sta_key(sta):
    return (
        sorted(sta.arrival.items()),
        sorted(sta.required.items()),
        sorted((e.kind, e.name, e.arrival, e.required) for e in sta.endpoints),
        sta.tns,
        sta.wns,
    )


def _security_key(report):
    regions = sorted(
        (
            tuple(sorted((g.row, g.lo, g.hi) for g in r.component.gaps)),
            r.free_tracks,
            r.num_sites,
        )
        for r in report.regions
    )
    return regions, sorted(report.distances.items()), report.thresh_er


def _random_move(rng, layout, pool):
    """Move one random cell to a random legal slot; True if it moved."""
    name = rng.choice(pool)
    width = layout.netlist.instance(name).width_sites
    old = layout.placements[name]
    layout.unplace(name)
    for _ in range(200):
        row = rng.randrange(layout.num_rows)
        start = rng.randrange(0, max(1, layout.sites_per_row - width))
        if layout.occupancy[row].can_place(start, width):
            layout.place(name, row, start)
            break
    else:
        layout.place(name, old.row, old.start)
    return layout.placements[name] != old


def _apply_random_eco(rng, design):
    """Mutate the layout with 1–5 random moves; return a random NDR."""
    layout = design["layout"]
    assets = design["assets"]
    movable = [
        i.name
        for i in design["netlist"].instances
        if layout.is_placed(i.name) and i.name not in layout.fixed
    ]
    asset_pool = [
        a for a in assets if layout.is_placed(a) and a not in layout.fixed
    ]
    for _ in range(rng.randint(1, 5)):
        pool = asset_pool if (asset_pool and rng.random() < 0.4) else movable
        _random_move(rng, layout, pool)
    scale = round(rng.uniform(1.0, 2.0), 2)
    return NonDefaultRule.from_list([scale] * design["tech"].num_layers)


def _oracle(design, ndr):
    """Full recompute: fresh route, fresh STA, fresh security scan."""
    layout = design["layout"]
    routing = global_route(layout, ndr=ndr)
    sta = run_sta(layout, design["constraints"], routing=routing)
    security = find_exploitable_regions(
        layout, sta, design["assets"], thresh_er=THRESH_ER, routing=routing
    )
    return routing, sta, security


#: Structural lint rules asserted after every random ECO (the DEF
#: round-trip rule is checked once per sequence instead — it re-parses
#: the whole layout, which would dominate the bulk tier's runtime).
_STRUCTURAL_RULES = ("L001", "L002", "L003", "L004", "L005", "N001", "N002")


def _assert_layout_legal(design, step, rules=_STRUCTURAL_RULES):
    """Lint-as-oracle: random ECOs must never corrupt the layout."""
    report = run_lint(
        design["layout"], assets=design["assets"], rules=list(rules)
    )
    assert report.errors == 0, (
        f"step {step}: random ECO corrupted the layout\n"
        + report.format_text(verbose=True)
    )


def _run_sequences(design, rng, n_sequences):
    """Drive ``n_sequences`` random ECOs through one DeltaEvaluator."""
    evaluator = DeltaEvaluator(
        design["layout"],
        design["constraints"],
        design["assets"],
        thresh_er=THRESH_ER,
    )
    for step in range(n_sequences):
        ndr = _apply_random_eco(rng, design)
        _assert_layout_legal(design, step)
        inc = evaluator.evaluate(ndr=ndr)
        routing, sta, security = _oracle(design, ndr)
        assert _routing_key(inc.routing) == _routing_key(routing), (
            f"step {step}: warm-start routing diverged from fresh route"
        )
        assert _sta_key(inc.sta) == _sta_key(sta), (
            f"step {step}: delta-STA diverged from full STA"
        )
        assert _security_key(inc.security) == _security_key(security), (
            f"step {step}: delta-security diverged from full scan"
        )
    _assert_layout_legal(
        design, "final", rules=_STRUCTURAL_RULES + ("S001",)
    )


class TestEvaluatorDifferential:
    """DeltaEvaluator vs fresh route/STA/security, per design."""

    def test_first_evaluation_equals_oracle(self, diff_design):
        evaluator = DeltaEvaluator(
            diff_design["layout"],
            diff_design["constraints"],
            diff_design["assets"],
            thresh_er=THRESH_ER,
        )
        ndr = NonDefaultRule.default(diff_design["tech"].num_layers)
        inc = evaluator.evaluate(ndr=ndr)
        routing, sta, security = _oracle(diff_design, ndr)
        assert _routing_key(inc.routing) == _routing_key(routing)
        assert _sta_key(inc.sta) == _sta_key(sta)
        assert _security_key(inc.security) == _security_key(security)

    def test_random_eco_sequences_fast(self, diff_design):
        rng = random.Random(101)
        _run_sequences(diff_design, rng, n_sequences=4)

    @pytest.mark.slow
    def test_random_eco_sequences_bulk(self, diff_design):
        # 3 design params x 66 sequences + the fast subset's 3 x 4 puts
        # the harness past 200 randomized sequences per full run.
        rng = random.Random(202)
        _run_sequences(diff_design, rng, n_sequences=66)


class TestFlowDifferential:
    """GDSIIGuard incremental path vs the full-recompute path."""

    def _flow_key(self, result):
        return (
            result.score,
            result.tns,
            result.wns,
            result.power,
            result.drc_count,
            result.feasible,
            result.security.er_sites,
            result.security.er_tracks,
            result.security.num_regions,
        )

    def _random_configs(self, rng, num_layers, count):
        configs = []
        for _ in range(count):
            scales = tuple(
                rng.choice(RWS_SCALE_CHOICES) for _ in range(num_layers)
            )
            if rng.random() < 0.3:
                configs.append(FlowConfig("CS", 8, 1, scales))
            else:
                configs.append(
                    FlowConfig(
                        "LDA",
                        rng.choice(LDA_N_CHOICES[:3]),
                        rng.choice(LDA_ITER_CHOICES),
                        scales,
                    )
                )
        return configs

    def _assert_flow_matches(self, design, configs):
        layout = design["layout"]
        routing = global_route(layout)
        guard_inc = GDSIIGuard(
            layout,
            design["constraints"],
            design["assets"],
            baseline_routing=routing,
            thresh_er=THRESH_ER,
            incremental=True,
        )
        guard_full = GDSIIGuard(
            layout,
            design["constraints"],
            design["assets"],
            baseline_routing=routing,
            thresh_er=THRESH_ER,
            incremental=False,
        )
        for config in configs:
            inc = guard_inc.run(config)
            full = guard_full.run(config)
            assert self._flow_key(inc) == self._flow_key(full), (
                f"incremental flow diverged on {config}"
            )

    def test_flow_configs_fast(self, diff_design):
        rng = random.Random(303)
        configs = self._random_configs(
            rng, diff_design["tech"].num_layers, count=3
        )
        self._assert_flow_matches(diff_design, configs)

    @pytest.mark.slow
    def test_flow_configs_bulk(self, diff_design):
        # Repeats op keys with fresh scale vectors on purpose: the cached
        # operator entry + journal chain is exactly the state the GA
        # inner loop exercises.
        rng = random.Random(404)
        configs = self._random_configs(
            rng, diff_design["tech"].num_layers, count=10
        )
        self._assert_flow_matches(diff_design, configs)
