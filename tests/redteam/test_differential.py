"""Differential determinism tests for attack campaigns.

The contract under test: a campaign summary is a pure function of
``(targets, grid, attempts, seed)`` — worker count, kill/resume
schedule, and injected worker faults must never change a byte of
:meth:`~repro.redteam.campaign.CampaignResult.to_json`.

Fast tier drives the arithmetic ``FakeAttackSurface``; the ``slow``
markers replay the same scenarios on the real PRESENT benchmark.
"""

from __future__ import annotations

import pytest

from repro.errors import InjectedInterrupt
from repro.redteam import AttackCampaign, AttackGrid
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.supervisor import SupervisionConfig

from tests.redteam.conftest import FAST_SUPERVISION


def interrupted_then_resumed(make, run_dir, batch, processes=0):
    """Run until the injected interrupt after ``batch``, then resume."""
    faults.install(
        FaultPlan([FaultSpec(generation=batch, kind="interrupt")])
    )
    try:
        with pytest.raises(InjectedInterrupt):
            make(checkpoint_dir=run_dir, processes=processes).run()
    finally:
        faults.clear()
    resumed = make(
        checkpoint_dir=run_dir, resume=True, processes=processes
    ).run()
    assert resumed.resumed_from == batch
    return resumed


class TestFakeTierDifferential:
    def test_worker_count_never_changes_the_summary(self, make_campaign):
        oracle = make_campaign(processes=0).run().to_json()
        assert make_campaign(processes=1).run().to_json() == oracle
        assert make_campaign(processes=4).run().to_json() == oracle

    def test_kill_at_every_checkpoint_resumes_bitwise(
        self, make_campaign, tmp_path
    ):
        oracle = make_campaign().run().to_json()
        for batch in range(4):  # 2 targets x 2 specs
            resumed = interrupted_then_resumed(
                make_campaign, tmp_path / f"b{batch}", batch
            )
            assert resumed.to_json() == oracle

    def test_kill_resume_across_worker_counts(
        self, make_campaign, tmp_path
    ):
        # Checkpoint under 4 workers, resume serial: identity excludes
        # the worker count, and the bytes must still match.
        oracle = make_campaign(processes=0).run().to_json()
        faults.install(
            FaultPlan([FaultSpec(generation=1, kind="interrupt")])
        )
        try:
            with pytest.raises(InjectedInterrupt):
                make_campaign(
                    checkpoint_dir=tmp_path, processes=4
                ).run()
        finally:
            faults.clear()
        resumed = make_campaign(
            checkpoint_dir=tmp_path, resume=True, processes=0
        ).run()
        assert resumed.resumed_from == 1
        assert resumed.to_json() == oracle

    def test_injected_worker_faults_never_change_the_summary(
        self, make_campaign
    ):
        oracle = make_campaign(processes=0).run().to_json()
        plan = FaultPlan(
            [
                FaultSpec(generation=0, individual=1, attempt=0,
                          kind="crash"),
                FaultSpec(generation=2, individual=0, attempt=0,
                          kind="error"),
                FaultSpec(generation=1, individual=2, attempt=0,
                          kind="hang", hang_s=30.0),
            ]
        )
        faults.install(plan)
        try:
            chaotic = make_campaign(
                processes=2,
                supervision=SupervisionConfig(
                    timeout_s=0.5, backoff_s=0.0, poll_s=0.01
                ),
            ).run()
        finally:
            faults.clear()
        assert chaotic.to_json() == oracle
        counters = chaotic.resilience.as_dict()
        assert counters["retries"] > 0


@pytest.mark.slow
class TestPresentTierDifferential:
    """The acceptance scenario on the real PRESENT benchmark."""

    ATTEMPTS = 2
    SEED = 5

    def make(self, present_surface, checkpoint_dir=None, resume=False,
             processes=0):
        return AttackCampaign(
            [("baseline", present_surface)],
            AttackGrid.preset("ci"),
            attempts=self.ATTEMPTS,
            seed=self.SEED,
            processes=processes,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            supervision=FAST_SUPERVISION,
        )

    def test_worker_count_never_changes_the_summary(self, present_surface):
        oracle = self.make(present_surface).run().to_json()
        parallel = self.make(present_surface, processes=2).run().to_json()
        assert parallel == oracle

    def test_kill_at_every_checkpoint_resumes_bitwise(
        self, present_surface, tmp_path
    ):
        oracle = self.make(present_surface).run().to_json()
        for batch in range(2):  # 1 target x 2 ci specs
            resumed = interrupted_then_resumed(
                lambda **kw: self.make(present_surface, **kw),
                tmp_path / f"b{batch}",
                batch,
            )
            assert resumed.to_json() == oracle
