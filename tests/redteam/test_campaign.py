"""Engine-behavior tests for :mod:`repro.redteam.campaign`."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import (
    CheckpointError,
    ExplorationCancelled,
    SecurityError,
)
from repro.redteam import (
    AttackCampaign,
    AttackGrid,
    AttackSpecPoint,
    CampaignCheckpoint,
    derive_attempt_seed,
)
from repro.resilience.checkpoint import CheckpointManager
from repro.service.testing import FakeAttackSurface


class TestSeedDerivation:
    def test_pinned_value(self):
        # sha256-derived: a change here silently invalidates every
        # recorded campaign, so the constant is pinned.
        assert derive_attempt_seed(0, "baseline", "a2-er20-first", 0) == (
            15783693253200928713
        )

    def test_every_coordinate_matters(self):
        base = derive_attempt_seed(1, "t", "s", 2)
        assert derive_attempt_seed(2, "t", "s", 2) != base
        assert derive_attempt_seed(1, "u", "s", 2) != base
        assert derive_attempt_seed(1, "t", "x", 2) != base
        assert derive_attempt_seed(1, "t", "s", 3) != base


class TestGrid:
    def test_presets_roundtrip(self):
        for name in ("ci", "quick", "default"):
            grid = AttackGrid.preset(name)
            assert AttackGrid.from_payload(grid.to_payload()) == grid

    def test_unknown_preset_rejected(self):
        with pytest.raises(SecurityError, match="unknown attack grid"):
            AttackGrid.preset("nope")

    def test_duplicate_spec_ids_rejected(self):
        point = AttackSpecPoint("dup", "a2")
        with pytest.raises(SecurityError, match="duplicate spec ids"):
            AttackGrid("bad", (point, point))

    def test_unknown_footprint_rejected(self):
        with pytest.raises(SecurityError, match="unknown footprint"):
            AttackSpecPoint("x", "not-a-footprint")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SecurityError, match="unknown strategy"):
            AttackSpecPoint("x", "a2", strategy="diagonal")


class TestCampaignValidation:
    def test_needs_targets(self, fake_grid):
        with pytest.raises(SecurityError, match="at least one target"):
            AttackCampaign([], fake_grid)

    def test_needs_attempts(self, fake_targets, fake_grid):
        with pytest.raises(SecurityError, match="at least one attempt"):
            AttackCampaign(fake_targets, fake_grid, attempts=0)

    def test_duplicate_targets_rejected(self, fake_grid):
        targets = [
            ("same", FakeAttackSurface("same")),
            ("same", FakeAttackSurface("same")),
        ]
        with pytest.raises(SecurityError, match="duplicate target ids"):
            AttackCampaign(targets, fake_grid)


class TestCampaignRun:
    def test_summary_shape_and_order(self, make_campaign, fake_grid):
        result = make_campaign().run()
        summary = result.summary()
        assert summary["kind"] == "redteam-campaign"
        assert summary["schema_version"] == 1
        assert summary["targets"] == ["baseline", "hardened"]
        # canonical order: targets outer, grid points inner
        assert [(r["target"], r["spec_id"]) for r in summary["results"]] == [
            (t, p.spec_id)
            for t in ("baseline", "hardened")
            for p in fake_grid.points
        ]
        for row in summary["results"]:
            assert row["attempts"] == 5
            assert len(row["outcomes"]) == 5
            assert row["success_rate"] == row["successes"] / 5
            if row["successes"]:
                assert row["first_success_attempt"] == min(
                    o["attempt"] for o in row["outcomes"] if o["success"]
                )
            else:
                assert row["first_success_attempt"] is None

    def test_summary_survives_json_roundtrip(self, make_campaign):
        summary = make_campaign().run().summary()
        assert json.loads(json.dumps(summary)) == summary

    def test_seed_changes_outcomes(self, make_campaign):
        a = make_campaign(seed=1).run().to_json()
        b = make_campaign(seed=2).run().to_json()
        assert a != b

    def test_success_rate_accessor(self, make_campaign):
        result = make_campaign().run()
        row = result.rows()[0]
        assert result.success_rate(row["target"], row["spec_id"]) == (
            row["success_rate"]
        )

    def test_on_batch_progress(self, make_campaign, fake_grid):
        seen = []
        make_campaign(
            on_batch=lambda batch, total, row: seen.append(
                (batch, total, row["target"], row["spec_id"])
            )
        ).run()
        assert [s[0] for s in seen] == list(range(4))
        assert all(s[1] == 4 for s in seen)
        assert seen[0][2:] == ("baseline", "a2-er20-first")
        assert seen[-1][2:] == ("hardened", "lean-er12-random")

    def test_cancel_at_batch_boundary(self, make_campaign, tmp_path):
        fired = []

        def stop():
            fired.append(True)
            return len(fired) >= 2  # cancel after the second batch

        with pytest.raises(ExplorationCancelled) as exc:
            make_campaign(checkpoint_dir=tmp_path, should_stop=stop).run()
        assert exc.value.generation == 1
        # the cancelled batches are durable: resume completes bitwise
        # identically to an uninterrupted campaign
        oracle = make_campaign().run().to_json()
        resumed = make_campaign(checkpoint_dir=tmp_path, resume=True).run()
        assert resumed.resumed_from == 1
        assert resumed.to_json() == oracle

    def test_obs_counters(self, make_campaign):
        obs.enable()
        try:
            make_campaign().run()
            snapshot = obs.get_metrics().snapshot()
        finally:
            obs.disable()
        assert snapshot["redteam.batches"]["value"] == 4
        assert snapshot["redteam.attempts"]["value"] == 20
        assert "redteam.checkpoints" not in snapshot  # no checkpoint dir
        assert 0 < snapshot["redteam.successes"]["value"] <= 20


class TestCheckpointing:
    def test_resume_without_checkpoint_starts_fresh(
        self, make_campaign, tmp_path
    ):
        fresh = make_campaign(checkpoint_dir=tmp_path, resume=True).run()
        assert fresh.resumed_from is None
        assert fresh.to_json() == make_campaign().run().to_json()

    def test_completed_run_resumes_to_identical_summary(
        self, make_campaign, tmp_path
    ):
        first = make_campaign(checkpoint_dir=tmp_path).run()
        again = make_campaign(checkpoint_dir=tmp_path, resume=True).run()
        assert again.resumed_from == 3  # last batch: nothing re-ran
        assert again.to_json() == first.to_json()

    def test_identity_mismatch_rejected(self, make_campaign, tmp_path):
        make_campaign(checkpoint_dir=tmp_path).run()
        with pytest.raises(CheckpointError, match="differing: seed"):
            make_campaign(
                checkpoint_dir=tmp_path, resume=True, seed=99
            ).run()

    def test_worker_count_not_part_of_identity(
        self, make_campaign, tmp_path
    ):
        make_campaign(checkpoint_dir=tmp_path, processes=2).run()
        resumed = make_campaign(
            checkpoint_dir=tmp_path, resume=True, processes=0
        ).run()
        assert resumed.resumed_from == 3

    def test_foreign_checkpoint_kind_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save_payload({"kind": "exploration", "generation": 1})
        with pytest.raises(CheckpointError, match="not a red-team"):
            CampaignCheckpoint.load(manager)

    def test_malformed_checkpoint_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save_payload({"kind": "redteam", "batch": "x"})
        with pytest.raises(CheckpointError, match="malformed campaign"):
            CampaignCheckpoint.load(manager)

    def test_checkpoint_payload_roundtrip(self, make_campaign, tmp_path):
        make_campaign(checkpoint_dir=tmp_path).run()
        ckpt = CampaignCheckpoint.load(CheckpointManager(tmp_path))
        assert ckpt is not None
        assert ckpt.batch == 3
        again = CampaignCheckpoint.from_payload(ckpt.to_payload())
        assert again.to_payload() == ckpt.to_payload()
