"""Hypothesis property tests for :func:`attempt_insertion`.

Two invariants the campaign engine leans on:

* **Rollback guarantee** — a failed (or successful!) attempt is a pure
  query: the attacked layout and its netlist are bitwise unchanged for
  *every* spec/seed combination, so campaigns need no undo machinery.
* **Legal implants** — whenever an attempt succeeds, materializing the
  implant yields a layout that passes the placement lint rules (L001
  cell-overlap, L003 blockage, L004 frozen-assets) with every trojan
  gate seated inside a previously exploitable region.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.lint import run_lint
from repro.redteam.grid import FOOTPRINTS
from repro.security.exploitable import find_exploitable_regions
from repro.security.trojan import (
    STRATEGIES,
    TrojanSpec,
    attempt_insertion,
    materialize_implant,
)

PLACEMENT_RULES = ("L001", "L003", "L004")

specs = st.builds(
    TrojanSpec,
    gate_masters=st.sampled_from(sorted(FOOTPRINTS)).map(
        lambda k: FOOTPRINTS[k]
    ),
    wiring_demand=st.sampled_from([1.0, 4.0, 8.0]),
    tap_limit_um=st.one_of(
        st.none(), st.floats(5.0, 200.0, allow_nan=False)
    ),
    strategy=st.sampled_from(STRATEGIES),
)


def layout_fingerprint(layout):
    """Everything an attacker could possibly perturb."""
    return (
        dict(layout.placements),
        dict(layout.blockages),
        set(layout.fixed),
        dict(layout.port_positions),
        layout.netlist.signature(),
    )


class TestRollbackGuarantee:
    @given(
        spec=specs,
        seed=st.integers(0, 2**63 - 1),
        thresh_er=st.sampled_from([8, 12, 20, 28, 10**9]),
    )
    @settings(deadline=None)
    def test_attempt_never_mutates_the_layout(
        self, tiny_design, spec, seed, thresh_er
    ):
        d = tiny_design
        before = layout_fingerprint(d["layout"])
        report = attempt_insertion(
            d["layout"],
            d["sta"],
            d["assets"],
            routing=d["routing"],
            spec=spec,
            thresh_er=thresh_er,
            rng=np.random.default_rng(seed),
        )
        assert layout_fingerprint(d["layout"]) == before
        if not report.success:
            assert report.reason
            assert report.placements == ()
            assert report.victim is None


class TestImplantLegality:
    @given(
        footprint=st.sampled_from(sorted(FOOTPRINTS)),
        strategy=st.sampled_from(STRATEGIES),
        seed=st.integers(0, 2**63 - 1),
    )
    @settings(deadline=None, max_examples=15)
    def test_successful_implant_passes_lint_inside_regions(
        self, misty_design, footprint, strategy, seed
    ):
        d = misty_design
        spec = TrojanSpec(
            gate_masters=FOOTPRINTS[footprint], strategy=strategy
        )
        report = attempt_insertion(
            d.layout,
            d.sta,
            d.assets,
            routing=d.routing,
            spec=spec,
            rng=np.random.default_rng(seed),
        )
        if not report.success:
            # strategy/seed combinations may legitimately fail to pack;
            # the rollback property above already covers that path
            return

        # every gate sits inside a previously exploitable gap
        gaps = [
            (gap.row, gap.lo, gap.hi)
            for region in find_exploitable_regions(
                d.layout, d.sta, d.assets, routing=d.routing
            ).regions
            for gap in region.component.gaps
        ]
        lib = d.layout.netlist.library
        for master, row, start in report.placements:
            width = lib.cell(master).width_sites
            assert any(
                row == g_row and g_lo <= start and start + width <= g_hi
                for g_row, g_lo, g_hi in gaps
            ), f"{master} at ({row}, {start}) is outside every gap"

        before = layout_fingerprint(d.layout)
        implanted = materialize_implant(d.layout, report, spec)
        assert layout_fingerprint(d.layout) == before
        assert implanted.netlist is not d.layout.netlist

        lint = run_lint(
            implanted,
            assets=d.assets,
            reference_placements={
                a: d.layout.placements[a]
                for a in d.assets
                if a in d.layout.placements
            },
            rules=list(PLACEMENT_RULES),
            subject="implanted",
        )
        bad = [
            v for v in lint.violations if v.rule_id in PLACEMENT_RULES
        ]
        assert bad == [], [
            (v.rule_id, v.message) for v in bad
        ]
