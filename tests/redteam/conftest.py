"""Shared fixtures for the red-team campaign suites.

The fast tier drives :class:`~repro.service.testing.FakeAttackSurface`
(millisecond-scale, pure arithmetic on the attempt seed); the ``slow``
markers re-run the determinism scenarios on the real PRESENT benchmark.
Campaigns here always run with test-friendly supervision (no backoff
sleeps, short poll) so chaos scenarios resolve in milliseconds.
"""

from __future__ import annotations

import pytest

from repro.redteam import (
    AttackCampaign,
    AttackGrid,
    AttackSpecPoint,
    LayoutAttackSurface,
)
from repro.resilience import faults
from repro.resilience.supervisor import SupervisionConfig
from repro.service.testing import FakeAttackSurface

FAST_SUPERVISION = SupervisionConfig(backoff_s=0.0, poll_s=0.01)


@pytest.fixture(autouse=True)
def _fault_hygiene():
    """No fault plan may leak into (or out of) any test."""
    faults.clear()
    yield
    faults.clear()


@pytest.fixture()
def fake_grid():
    """A 2-spec grid covering both placement strategies."""
    return AttackGrid(
        "test",
        (
            AttackSpecPoint("a2-er20-first", "a2"),
            AttackSpecPoint(
                "lean-er12-random", "lean", thresh_er=12,
                strategy="random_fit",
            ),
        ),
    )


@pytest.fixture()
def fake_targets():
    """A baseline + hardened fake pair (4 batches with ``fake_grid``)."""
    return [
        ("baseline", FakeAttackSurface("baseline", resistance=0.25)),
        ("hardened", FakeAttackSurface("hardened", resistance=0.6)),
    ]


@pytest.fixture()
def make_campaign(fake_targets, fake_grid):
    """Factory for fake-tier campaigns with test-friendly supervision."""

    def factory(
        checkpoint_dir=None,
        resume=False,
        processes=0,
        attempts=5,
        seed=11,
        targets=None,
        grid=None,
        supervision=None,
        should_stop=None,
        on_batch=None,
    ):
        return AttackCampaign(
            targets if targets is not None else fake_targets,
            grid or fake_grid,
            attempts=attempts,
            seed=seed,
            processes=processes,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            supervision=supervision or FAST_SUPERVISION,
            should_stop=should_stop,
            on_batch=on_batch,
        )

    return factory


@pytest.fixture(scope="session")
def present_surface(present_design):
    """One shared PRESENT baseline surface for the slow tier.

    Surfaces are pure queries over the design database (attempts never
    mutate the layout), so sharing one across tests cannot leak state.
    """
    d = present_design
    return LayoutAttackSurface(
        "baseline", d.layout, d.sta, d.assets,
        routing=d.routing, constraints=d.constraints,
    )
