"""Tests for the ASCII scatter renderer."""

from repro.reporting.scatter import ascii_scatter


class TestAsciiScatter:
    def test_empty(self):
        assert ascii_scatter([]) == "(no points)"

    def test_markers_present(self):
        out = ascii_scatter(
            [
                ("explored", ".", [(0, 0), (1, 1), (0.5, 0.2)]),
                ("front", "o", [(0, 1), (1, 0)]),
            ],
            width=30,
            height=8,
        )
        assert "." in out
        assert "o" in out
        assert "explored" in out and "front" in out

    def test_single_point(self):
        out = ascii_scatter([("p", "x", [(5, 5)])], width=10, height=4)
        assert "x" in out

    def test_axis_bounds_printed(self):
        out = ascii_scatter(
            [("s", "*", [(1.5, 2.5), (3.5, 7.5)])], width=20, height=6,
            x_label="security", y_label="-TNS",
        )
        assert "1.500" in out
        assert "7.500" in out
        assert "security" in out
