"""Tests for the per-stage profile table and the metrics JSON archive."""

import json

from repro.obs import Metrics
from repro.reporting.profile_report import (
    profile_table,
    stage_rows,
    write_metrics_json,
)


def _populated_registry() -> Metrics:
    m = Metrics()
    for wall in (0.2, 0.3):
        m.histogram("flow.sta.wall_s").observe(wall)
    m.counter("flow.sta.calls").inc(2)
    m.gauge("flow.sta.peak_rss_kb").set_max(2048.0)
    m.histogram("flow.route.wall_s").observe(1.5)
    m.counter("flow.route.calls").inc(1)
    m.counter("route.nets_routed").inc(900)  # not a stage: no .wall_s
    return m


class TestStageRows:
    def test_extracts_stages_sorted_by_total(self):
        rows = stage_rows(_populated_registry().snapshot())
        assert [r["stage"] for r in rows] == ["flow.route", "flow.sta"]
        sta = rows[1]
        assert sta["calls"] == 2
        assert sta["total_s"] == 0.5
        assert sta["mean_s"] == 0.25
        assert sta["peak_rss_kb"] == 2048.0
        assert rows[0]["peak_rss_kb"] is None

    def test_non_stage_metrics_ignored(self):
        rows = stage_rows(_populated_registry().snapshot())
        assert all(r["stage"] != "route.nets_routed" for r in rows)

    def test_empty_snapshot(self):
        assert stage_rows({}) == []


class TestProfileTable:
    def test_renders_all_stages(self):
        table = profile_table(
            _populated_registry().snapshot(), title="Stage profile — T"
        )
        assert "Stage profile — T" in table
        assert "flow.sta" in table
        assert "flow.route" in table
        assert "peak RSS MB" in table
        # 2048 KB == 2.0 MB
        assert "2.0" in table

    def test_empty_snapshot_message(self):
        assert "no stages recorded" in profile_table({})


class TestMetricsJson:
    def test_write_and_reload(self, tmp_path):
        m = _populated_registry()
        out = write_metrics_json(
            m.snapshot(), tmp_path / "perf" / "run.json",
            extra={"design": "AES_2"},
        )
        payload = json.loads(out.read_text())
        assert payload["meta"]["design"] == "AES_2"
        assert payload["metrics"]["flow.sta.calls"]["value"] == 2
        assert payload["metrics"]["flow.sta.wall_s"]["count"] == 2
