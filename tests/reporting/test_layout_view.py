"""Tests for the ASCII layout renderer."""

from repro.reporting.layout_view import layout_to_ascii


class TestLayoutView:
    def test_dimensions(self, small_layout):
        text = layout_to_ascii(small_layout, width=30, height=4)
        lines = text.splitlines()
        assert len(lines) == 5  # 4 raster lines + legend
        assert all(len(l) == 30 for l in lines[:4])

    def test_free_and_occupied_marks(self, small_layout):
        text = layout_to_ascii(small_layout, width=60, height=4)
        assert "." in text
        assert "#" in text

    def test_assets_highlighted(self, misty_design):
        text = layout_to_ascii(
            misty_design.layout, assets=misty_design.assets,
            width=60, height=20,
        )
        assert "A" in text

    def test_raster_larger_than_core_clamps(self, small_layout):
        text = layout_to_ascii(small_layout, width=500, height=100)
        lines = text.splitlines()
        assert len(lines) - 1 == small_layout.num_rows
