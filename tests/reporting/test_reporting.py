"""Tests for tables and the runtime model."""

import pytest

from repro.reporting.runtime_model import (
    FlowStep,
    RuntimeModel,
    ba_runtime,
    bisa_runtime,
    gdsii_guard_runtime,
    icas_runtime,
)
from repro.reporting.tables import format_table


class TestTables:
    def test_alignment_and_title(self):
        out = format_table(
            ["name", "value"], [["a", 1.23456], ["bb", 2]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.235" in out
        assert "-+-" in lines[2]

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestRuntimeModel:
    def test_charge_and_total(self):
        m = RuntimeModel()
        m.charge(FlowStep.FULL_PLACE_ROUTE, 2)
        assert m.total_hours() == pytest.approx(4.4)

    def test_breakdown_sorted(self):
        m = RuntimeModel()
        m.charge(FlowStep.STA_ANALYSIS, 1)
        m.charge(FlowStep.FULL_PLACE_ROUTE, 1)
        rows = m.breakdown()
        assert rows[0][0] == "full_place_route"

    def test_paper_ordering_on_aes2(self):
        """ICAS slowest, GDSII-Guard fastest — the §IV-D ordering."""
        icas = icas_runtime(num_trials=4).total_hours()
        bisa = bisa_runtime().total_hours()
        ba = ba_runtime().total_hours()
        guard = gdsii_guard_runtime(evaluations=64, processes=4).total_hours()
        assert guard < min(bisa, ba, icas)
        assert icas > max(bisa, ba)

    def test_parallelism_helps(self):
        serial = gdsii_guard_runtime(evaluations=64, processes=1).total_hours()
        parallel = gdsii_guard_runtime(evaluations=64, processes=8).total_hours()
        assert parallel < serial
