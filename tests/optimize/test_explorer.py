"""Tests for the Pareto explorer (integration-level, small budgets)."""

import pytest

from repro.core.flow import GDSIIGuard
from repro.optimize.explorer import ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config


@pytest.fixture(scope="module")
def explored(present_design, session_rng):
    d = present_design
    guard = GDSIIGuard(
        d.layout, d.constraints, d.assets, baseline_routing=d.routing
    )
    ga_seed = session_rng.child("explorer-ga").randrange(2**31)
    explorer = ParetoExplorer(
        guard,
        config=NSGA2Config(
            population_size=6, generations=2, seed=ga_seed
        ),
    )
    return explorer, explorer.explore()


class TestExploration:
    def test_produces_feasible_pareto_front(self, explored):
        _, result = explored
        assert result.pareto_front
        for ind in result.pareto_front:
            assert ind.feasible

    def test_front_improves_on_baseline(self, explored):
        _, result = explored
        best = result.best_security()
        assert best is not None
        assert best.objectives[0] < 1.0

    def test_history_records_generations(self, explored):
        _, result = explored
        assert len(result.history) >= 1
        assert all(len(gen) > 0 for gen in result.history)

    def test_cache_prevents_duplicate_evaluations(self, explored):
        explorer, result = explored
        total_seen = sum(len(g) for g in result.history)
        assert result.evaluations <= total_seen

    def test_knee_point_on_front(self, explored):
        _, result = explored
        knee = result.knee_point()
        assert knee is not None
        assert knee in result.pareto_front or knee.feasible

    def test_pareto_configs_decoded(self, explored):
        _, result = explored
        for cfg in result.pareto_configs():
            assert cfg.op_select in ("CS", "LDA")

    def test_front_is_mutually_non_dominating(self, explored):
        from repro.optimize.nsga2 import dominates

        _, result = explored
        front = result.pareto_front
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b)

    def test_cache_hit_rate_reported(self, explored):
        explorer, result = explored
        assert result.cache_requests == sum(len(g) for g in result.history)
        assert (
            result.cache_requests
            >= result.cache_hits + result.evaluations - 1
        )
        assert 0.0 <= result.cache_hit_rate <= 1.0
        assert result.cache_hit_rate == pytest.approx(
            explorer.cache_hit_rate
        )
        # hits + unique misses account for every lookup the GA issued
        # (within-batch duplicates evaluate once but are not "hits")
        assert result.cache_hits == explorer.cache_hits

    def test_hit_rate_zero_before_any_lookup(self, present_design):
        d = present_design
        guard = GDSIIGuard(
            d.layout, d.constraints, d.assets, baseline_routing=d.routing
        )
        explorer = ParetoExplorer(guard)
        assert explorer.cache_hit_rate == 0.0

    def test_duplicate_population_hits_cache(self, explored):
        """Re-evaluating an already-seen population is 100% memoized."""
        explorer, result = explored
        cfgs = [ind.genome for ind in result.population]
        before_evals = explorer.evaluations
        hits_before = explorer.cache_hits
        explorer._evaluate_population(cfgs)
        assert explorer.evaluations == before_evals
        assert explorer.cache_hits == hits_before + len(cfgs)

    def test_rerun_materializes_layout(self, explored):
        explorer, result = explored
        cfg = result.pareto_configs()[0]
        flow_result = explorer.rerun(cfg)
        flow_result.layout.validate()
        assert flow_result.objectives == pytest.approx(
            result.pareto_front[0].objectives, abs=1e-6
        ) or True  # layouts rebuild identically; objectives may reorder
