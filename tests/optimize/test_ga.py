"""Tests for the scalarized-GA ablation baseline."""

import pytest

from repro.core.flow import GDSIIGuard
from repro.optimize.ga import SingleObjectiveGA
from repro.optimize.nsga2 import NSGA2Config


@pytest.fixture(scope="module")
def scalar_result(present_design):
    d = present_design
    guard = GDSIIGuard(
        d.layout, d.constraints, d.assets, baseline_routing=d.routing
    )
    ga = SingleObjectiveGA(
        guard, config=NSGA2Config(population_size=5, generations=2, seed=4)
    )
    return ga, ga.run()


class TestSingleObjectiveGA:
    def test_returns_valid_config(self, scalar_result):
        _, result = scalar_result
        assert result.best_config.op_select in ("CS", "LDA")

    def test_fitness_composition(self, scalar_result):
        _, result = scalar_result
        sec, neg_tns = result.best_objectives
        assert result.best_fitness >= sec + neg_tns - 1e-9

    def test_improves_on_baseline(self, scalar_result):
        _, result = scalar_result
        assert result.best_objectives[0] < 1.0

    def test_caches_duplicates(self, scalar_result):
        ga, result = scalar_result
        assert result.evaluations <= 5 * 3  # initial + per-generation
        assert ga.evaluations == result.evaluations
