"""The process-parallel evaluation path (the paper's speed-up lever)."""

import pytest

from repro.core.flow import GDSIIGuard
from repro.optimize.explorer import ParetoExplorer
from repro.optimize.nsga2 import NSGA2Config


@pytest.mark.slow
def test_parallel_evaluation_matches_sequential(present_design):
    d = present_design
    guard = GDSIIGuard(
        d.layout, d.constraints, d.assets, baseline_routing=d.routing
    )
    config = NSGA2Config(population_size=4, generations=1, seed=42)

    seq = ParetoExplorer(guard, config=config, processes=0).explore()
    par = ParetoExplorer(guard, config=config, processes=2).explore()

    seq_objs = sorted(i.objectives for i in seq.population)
    par_objs = sorted(i.objectives for i in par.population)
    assert len(seq_objs) == len(par_objs)
    for a, b in zip(seq_objs, par_objs):
        assert a == pytest.approx(b, abs=1e-9)
