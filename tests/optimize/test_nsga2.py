"""Tests for NSGA-II primitives, with a brute-force domination oracle."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import OptimizationError
from repro.optimize.nsga2 import (
    Individual,
    NSGA2Config,
    crowded_less,
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    nsga2_select,
    tournament,
)


def ind(*objs, violation=0.0):
    return Individual(genome=None, objectives=tuple(objs), violation=violation)


class TestDomination:
    def test_strict_domination(self):
        assert dominates(ind(1, 1), ind(2, 2))
        assert not dominates(ind(2, 2), ind(1, 1))

    def test_non_comparable(self):
        assert not dominates(ind(1, 3), ind(3, 1))
        assert not dominates(ind(3, 1), ind(1, 3))

    def test_equal_do_not_dominate(self):
        assert not dominates(ind(1, 1), ind(1, 1))

    def test_feasible_dominates_infeasible(self):
        assert dominates(ind(9, 9), ind(0, 0, violation=1.0))

    def test_less_infeasible_dominates(self):
        assert dominates(
            ind(9, 9, violation=1.0), ind(0, 0, violation=2.0)
        )

    def test_arity_mismatch(self):
        with pytest.raises(OptimizationError):
            dominates(ind(1), ind(1, 2))


class TestSortAndCrowding:
    def test_fronts_ordered(self):
        pop = [ind(1, 1), ind(2, 2), ind(3, 3), ind(0, 4)]
        fronts = fast_non_dominated_sort(pop)
        assert [i.objectives for i in fronts[0]] == [(1, 1), (0, 4)]
        assert pop[0].rank == 0
        assert pop[2].rank == 2

    def test_boundary_points_infinite_crowding(self):
        front = [ind(0, 3), ind(1, 2), ind(3, 0)]
        crowding_distance(front)
        assert front[0].crowding == float("inf")
        assert front[2].crowding == float("inf")
        assert 0 < front[1].crowding < float("inf")

    def test_crowded_less(self):
        a, b = ind(1, 1), ind(2, 2)
        a.rank, b.rank = 0, 1
        assert crowded_less(a, b)
        b.rank = 0
        a.crowding, b.crowding = 2.0, 1.0
        assert crowded_less(a, b)

    def test_select_keeps_best_front(self):
        pop = [ind(1, 1), ind(5, 5), ind(0.5, 2), ind(9, 9)]
        chosen = nsga2_select(pop, 2)
        objs = {i.objectives for i in chosen}
        assert (1, 1) in objs and (0.5, 2) in objs

    def test_select_truncates_by_crowding(self):
        # One big front; extremes must survive truncation.
        front = [ind(0, 4), ind(1, 3), ind(1.1, 2.9), ind(2, 2), ind(4, 0)]
        chosen = nsga2_select(front, 3)
        objs = {i.objectives for i in chosen}
        assert (0, 4) in objs and (4, 0) in objs

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 6), st.integers(0, 6), st.booleans()
            ),
            min_size=1,
            max_size=16,
        )
    )
    def test_property_front0_matches_bruteforce(self, raw):
        pop = [
            ind(a, b, violation=1.0 if bad else 0.0) for a, b, bad in raw
        ]
        fronts = fast_non_dominated_sort(pop)
        brute_front0 = [
            p
            for p in pop
            if not any(dominates(q, p) for q in pop)
        ]
        assert sorted(
            (i.objectives, i.violation) for i in fronts[0]
        ) == sorted((i.objectives, i.violation) for i in brute_front0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)),
            min_size=1,
            max_size=14,
        )
    )
    def test_property_fronts_partition_population(self, raw):
        pop = [ind(a, b) for a, b in raw]
        fronts = fast_non_dominated_sort(pop)
        flat = [i for f in fronts for i in f]
        assert len(flat) == len(pop)
        assert set(id(i) for i in flat) == set(id(i) for i in pop)


class TestTournamentAndConfig:
    def test_tournament_prefers_better_rank(self):
        rng = np.random.default_rng(0)
        a, b = ind(1, 1), ind(2, 2)
        a.rank, b.rank = 0, 1
        a.crowding = b.crowding = 1.0
        wins = sum(tournament([a, b], rng) is a for _ in range(50))
        assert wins > 25

    def test_config_validation(self):
        with pytest.raises(OptimizationError):
            NSGA2Config(population_size=2)
        with pytest.raises(OptimizationError):
            NSGA2Config(generations=0)
