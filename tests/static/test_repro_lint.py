"""Tests for tools/repro_lint.py — the codebase determinism lint.

The parametrized seeded-violation cases double as the gate's own spec:
each snippet is what an accidental nondeterminism regression would look
like, checked under the relpath scope where the rule must fire.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from repro_lint import check_source, check_tree  # noqa: E402


def rules_of(code, relpath):
    return [f.rule for f in check_source(code, relpath)]


SEEDED_VIOLATIONS = [
    # DET101 — nondeterministic RNG
    ("import random\n", "src/repro/layout/x.py", ["DET101"]),
    ("from random import shuffle\n", "src/repro/core/x.py", ["DET101"]),
    ("import numpy as np\nnp.random.seed(3)\n",
     "src/repro/layout/x.py", ["DET101"]),
    ("import numpy as np\nr = np.random.default_rng()\n",
     "src/repro/layout/x.py", ["DET101"]),
    ("import numpy as np\nv = np.random.randint(10)\n",
     "src/repro/place/x.py", ["DET101"]),
    # DET103 — kernels must not own randomness (even a *seeded*
    # default_rng is banned there; the Generator comes from the caller)
    ("import numpy as np\nr = np.random.default_rng(42)\n",
     "src/repro/kernels/x.py", ["DET103"]),
    ("import numpy as np\nv = np.random.randint(10)\n",
     "src/repro/kernels/sta.py", ["DET103"]),
    ("import numpy\ng = numpy.random.default_rng(7)\n",
     "src/repro/kernels/x.py", ["DET103"]),
    ("from numpy.random import default_rng\n",
     "src/repro/kernels/x.py", ["DET103"]),
    ("from numpy import random\n",
     "src/repro/kernels/x.py", ["DET103"]),
    ("import numpy.random\n",
     "src/repro/kernels/x.py", ["DET103"]),
    # DET102 — wall-clock reads (the acceptance-criteria case: an
    # injected time.time() under src/repro/layout/)
    ("import time\nt = time.time()\n", "src/repro/layout/x.py", ["DET102"]),
    ("import time\nt = time.time_ns()\n", "src/repro/core/x.py", ["DET102"]),
    ("from datetime import datetime\nd = datetime.now()\n",
     "src/repro/layout/x.py", ["DET102"]),
    ("from datetime import date\nd = date.today()\n",
     "src/repro/netlist/x.py", ["DET102"]),
    # DET104 — wall-clock in the replayable trees (service, redteam,
    # analysis): the DET102 calls plus the formatted-time family
    ("import time\nt = time.time()\n",
     "src/repro/service/x.py", ["DET104"]),
    ("import time\ns = time.strftime('%F')\n",
     "src/repro/redteam/x.py", ["DET104"]),
    ("from datetime import datetime\nd = datetime.now()\n",
     "src/repro/analysis/x.py", ["DET104"]),
    ("import time\nlt = time.localtime()\n",
     "src/repro/service/x.py", ["DET104"]),
    ("from datetime import datetime\n"
     "d = datetime.fromtimestamp(0)\n",
     "src/repro/service/x.py", ["DET104"]),
    # DET201 — blanket exception handlers
    ("try:\n    pass\nexcept:\n    pass\n",
     "src/repro/core/x.py", ["DET201"]),
    ("try:\n    pass\nexcept Exception:\n    pass\n",
     "src/repro/core/x.py", ["DET201"]),
    ("try:\n    pass\nexcept BaseException as e:\n    x = 1\n",
     "src/repro/core/x.py", ["DET201"]),
    ("try:\n    pass\nexcept (ValueError, Exception):\n    pass\n",
     "src/repro/core/x.py", ["DET201"]),
    # DET202 — print in library code
    ("print('hi')\n", "src/repro/layout/x.py", ["DET202"]),
    # DET301 — unsorted set iteration in serialization modules
    ("for x in {1, 2}:\n    pass\n",
     "src/repro/layout/def_io.py", ["DET301"]),
    ("for x in set(names):\n    pass\n",
     "src/repro/resilience/checkpoint.py", ["DET301"]),
    ("for x in layout.fixed:\n    pass\n",
     "src/repro/layout/def_io.py", ["DET301"]),
    ("out = [n for n in layout.fixed]\n",
     "src/repro/netlist/verilog.py", ["DET301"]),
]

ALLOWED_PATTERNS = [
    # seeded RNG and duration clocks are the sanctioned idioms
    ("import numpy as np\nr = np.random.default_rng(42)\n",
     "src/repro/layout/x.py"),
    ("import time\nt = time.perf_counter()\n", "src/repro/layout/x.py"),
    ("import time\nt = time.monotonic()\n", "src/repro/core/x.py"),
    # kernels may *consume* a Generator argument, and the seeded
    # default_rng idiom stays legal outside src/repro/kernels/
    ("def sample(rng, n):\n    return rng.integers(0, n)\n",
     "src/repro/kernels/x.py"),
    ("import numpy as np\nr = np.random.default_rng(42)\n",
     "src/repro/optimize/x.py"),
    # blanket handler that re-raises is fine
    ("try:\n    pass\nexcept Exception:\n    cleanup()\n    raise\n",
     "src/repro/core/x.py"),
    # narrow handlers are fine
    ("try:\n    pass\nexcept ValueError:\n    pass\n",
     "src/repro/core/x.py"),
    # the CLI and obs layers may read the wall clock; CLI may print
    ("import time\nt = time.time()\n", "src/repro/cli.py"),
    ("import time\nt = time.time()\n", "src/repro/obs/trace.py"),
    ("print('report')\n", "src/repro/cli.py"),
    ("print('table')\n", "src/repro/reporting/tables.py"),
    # the formatted-time family is only banned in the replayable
    # trees; duration clocks stay legal even there
    ("import time\ns = time.strftime('%F')\n", "src/repro/layout/x.py"),
    ("import time\nt = time.monotonic()\n", "src/repro/service/x.py"),
    # sorted set iteration in a serialization module is the fix
    ("for x in sorted(layout.fixed):\n    pass\n",
     "src/repro/layout/def_io.py"),
    # set iteration outside the serialization scope is not flagged
    ("for x in layout.fixed:\n    pass\n", "src/repro/place/x.py"),
    # code outside src/repro is out of scope entirely
    ("import random\nprint(random.random())\n", "tests/test_x.py"),
]


class TestSeededViolations:
    @pytest.mark.parametrize(
        "code,relpath,expected",
        SEEDED_VIOLATIONS,
        ids=[f"{v[2][0]}-{i}" for i, v in enumerate(SEEDED_VIOLATIONS)],
    )
    def test_rule_fires(self, code, relpath, expected):
        assert rules_of(code, relpath) == expected

    def test_syntax_error_reported(self):
        assert rules_of("def broken(:\n", "src/repro/x.py") == ["DET000"]


class TestAllowedPatterns:
    @pytest.mark.parametrize(
        "code,relpath",
        ALLOWED_PATTERNS,
        ids=[str(i) for i in range(len(ALLOWED_PATTERNS))],
    )
    def test_no_finding(self, code, relpath):
        assert rules_of(code, relpath) == []


class TestPragma:
    def test_disable_suppresses_on_line(self):
        code = "import random  # repro-lint: disable=DET101\n"
        assert rules_of(code, "src/repro/layout/x.py") == []

    def test_disable_with_justification_text(self):
        code = (
            "try:\n    pass\n"
            "except Exception:  # repro-lint: disable=DET201 — isolation\n"
            "    pass\n"
        )
        assert rules_of(code, "src/repro/core/x.py") == []

    def test_disable_wrong_rule_does_not_suppress(self):
        code = "import random  # repro-lint: disable=DET202\n"
        assert rules_of(code, "src/repro/layout/x.py") == ["DET101"]


class TestTreeGate:
    def test_src_repro_is_clean(self):
        findings = check_tree(REPO_ROOT)
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_standalone_run_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "repro_lint.py")],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestImportSilence:
    def test_library_import_prints_nothing(self):
        # DET202's contract, verified end to end: importing the package
        # must write nothing to stdout.
        proc = subprocess.run(
            [sys.executable, "-c",
             "import repro; import repro.lint; import repro.core.flow"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == ""
