"""Tests for the ratcheted mypy gate (skipped where mypy is absent)."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from mypy_gate import read_budget  # noqa: E402


class TestRatchetFile:
    def test_budget_parses(self):
        assert read_budget() >= 0

    def test_gate_skips_cleanly_without_mypy(self):
        try:
            import mypy  # noqa: F401
        except ImportError:
            proc = subprocess.run(
                [sys.executable, str(REPO_ROOT / "tools" / "mypy_gate.py")],
                cwd=REPO_ROOT, capture_output=True, text=True,
            )
            assert proc.returncode == 0
            assert "SKIPPED" in proc.stderr
            proc = subprocess.run(
                [sys.executable, str(REPO_ROOT / "tools" / "mypy_gate.py"),
                 "--require"],
                cwd=REPO_ROOT, capture_output=True, text=True,
            )
            assert proc.returncode == 2


class TestGateWithMypy:
    def test_within_budget(self):
        pytest.importorskip("mypy")
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "mypy_gate.py"),
             "--require"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
