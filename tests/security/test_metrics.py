"""Tests for the normalized security score."""

import pytest

from repro.errors import SecurityError
from repro.security.metrics import (
    SecurityMetrics,
    measure_security,
    security_score,
)


class TestSecurityScore:
    def test_identity_is_one(self):
        m = SecurityMetrics(er_sites=100, er_tracks=50.0, num_regions=3)
        assert security_score(m, m) == pytest.approx(1.0)

    def test_zero_when_fully_hardened(self):
        base = SecurityMetrics(er_sites=100, er_tracks=50.0, num_regions=3)
        opt = SecurityMetrics(er_sites=0, er_tracks=0.0, num_regions=0)
        assert security_score(opt, base) == 0.0

    def test_alpha_weighting(self):
        base = SecurityMetrics(er_sites=100, er_tracks=100.0, num_regions=1)
        opt = SecurityMetrics(er_sites=50, er_tracks=100.0, num_regions=1)
        assert security_score(opt, base, alpha=1.0) == pytest.approx(0.5)
        assert security_score(opt, base, alpha=0.0) == pytest.approx(1.0)
        assert security_score(opt, base, alpha=0.5) == pytest.approx(0.75)

    def test_bad_alpha(self):
        m = SecurityMetrics(er_sites=1, er_tracks=1.0, num_regions=1)
        with pytest.raises(SecurityError):
            security_score(m, m, alpha=1.5)

    def test_zero_baseline_conventions(self):
        base = SecurityMetrics(er_sites=0, er_tracks=0.0, num_regions=0)
        clean = SecurityMetrics(er_sites=0, er_tracks=0.0, num_regions=0)
        dirty = SecurityMetrics(er_sites=10, er_tracks=5.0, num_regions=1)
        assert security_score(clean, base) == 0.0
        assert security_score(dirty, base) == 1.0

    def test_can_exceed_one(self):
        base = SecurityMetrics(er_sites=100, er_tracks=100.0, num_regions=1)
        worse = SecurityMetrics(er_sites=200, er_tracks=100.0, num_regions=1)
        assert security_score(worse, base) > 1.0


class TestMeasureSecurity:
    def test_matches_report(self, tiny_design):
        m = measure_security(
            tiny_design["layout"],
            tiny_design["sta"],
            tiny_design["assets"],
            routing=tiny_design["routing"],
        )
        assert m.er_sites >= 0
        assert m.er_tracks >= 0.0
        assert m.num_regions >= 0

    def test_deterministic(self, tiny_design):
        a = measure_security(
            tiny_design["layout"], tiny_design["sta"], tiny_design["assets"]
        )
        b = measure_security(
            tiny_design["layout"], tiny_design["sta"], tiny_design["assets"]
        )
        assert a == b
