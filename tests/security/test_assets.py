"""Tests for asset annotation."""

import pytest

from repro.errors import SecurityError
from repro.security.assets import SecurityAssets, annotate_key_assets


class TestSecurityAssets:
    def test_empty_rejected(self):
        with pytest.raises(SecurityError):
            SecurityAssets(instance_names=())

    def test_duplicates_rejected(self):
        with pytest.raises(SecurityError):
            SecurityAssets(instance_names=("a", "a"))

    def test_membership_and_len(self):
        assets = SecurityAssets(instance_names=("a", "b"))
        assert len(assets) == 2
        assert "a" in assets
        assert "c" not in assets
        assert list(assets) == ["a", "b"]

    def test_validate_against(self, tiny_design):
        tiny_design["assets"].validate_against(tiny_design["netlist"])
        bogus = SecurityAssets(instance_names=("no_such_cell",))
        with pytest.raises(SecurityError):
            bogus.validate_against(tiny_design["netlist"])


class TestAnnotation:
    def test_prefix_annotation(self, tiny_design):
        assets = annotate_key_assets(tiny_design["netlist"])
        assert all(
            n.startswith("key_") or n.startswith("kctl_") for n in assets
        )
        assert len(assets) >= tiny_design["netlist"].num_instances * 0  # nonzero
        assert len(assets) > 0

    def test_no_match_raises(self, chain_netlist):
        with pytest.raises(SecurityError):
            annotate_key_assets(chain_netlist)

    def test_custom_prefixes(self, chain_netlist):
        assets = annotate_key_assets(chain_netlist, prefixes=("inv",))
        assert len(assets) == 4
