"""Tests for the ICAS coverage-metric extensions."""

import pytest

from repro.security.exploitable import find_exploitable_regions
from repro.security.icas_metrics import (
    TriggerSpaceHistogram,
    net_blockage,
    route_distance,
    trigger_space,
)


class TestTriggerSpace:
    def test_buckets(self):
        assert TriggerSpaceHistogram.bucket_of(3) == "<5"
        assert TriggerSpaceHistogram.bucket_of(7) == "5-9"
        assert TriggerSpaceHistogram.bucket_of(15) == "10-19"
        assert TriggerSpaceHistogram.bucket_of(30) == "20-49"
        assert TriggerSpaceHistogram.bucket_of(99) == ">=50"

    def test_histogram_counts_all_gaps(self, tiny_design):
        layout = tiny_design["layout"]
        hist = trigger_space(layout)
        expected = sum(
            len(occ.free_intervals()) for occ in layout.occupancy
        )
        assert hist.total_runs == expected
        assert sum(hist.buckets.values()) == expected

    def test_hardening_shrinks_large_runs(self, misty_design):
        from repro.core.cell_shift import cell_shift

        before = trigger_space(misty_design.layout)
        hardened = misty_design.layout.clone()
        cell_shift(hardened, thresh_er=20)
        after = trigger_space(hardened)
        assert after.buckets.get(">=50", 0) <= before.buckets.get(">=50", 0)


class TestNetBlockage:
    def test_values_in_range(self, tiny_design):
        blockage = net_blockage(
            tiny_design["layout"], tiny_design["assets"], tiny_design["routing"]
        )
        assert blockage  # asset nets exist
        for v in blockage.values():
            assert 0.0 <= v <= 1.0

    def test_only_asset_nets_reported(self, tiny_design):
        blockage = net_blockage(
            tiny_design["layout"], tiny_design["assets"], tiny_design["routing"]
        )
        netlist = tiny_design["netlist"]
        asset_set = set(tiny_design["assets"])
        for name in blockage:
            net = netlist.net(name)
            endpoints = [net.driver_pin] + list(net.sink_pins)
            assert any(
                ref is not None and ref.instance in asset_set
                for ref in endpoints
            )


class TestRouteDistance:
    def test_distances_nonnegative(self, tiny_design):
        report = find_exploitable_regions(
            tiny_design["layout"], tiny_design["sta"], tiny_design["assets"]
        )
        dist = route_distance(
            tiny_design["layout"], tiny_design["assets"], report
        )
        for v in dist.values():
            assert v is None or v >= 0.0

    def test_none_when_no_regions(self, tiny_design):
        report = find_exploitable_regions(
            tiny_design["layout"],
            tiny_design["sta"],
            tiny_design["assets"],
            thresh_er=10**9,
        )
        dist = route_distance(
            tiny_design["layout"], tiny_design["assets"], report
        )
        assert all(v is None for v in dist.values())
