"""Property: frozen security assets never move under any placement op.

The anti-Trojan flow freezes the security-critical cells before running
an ECO operator (flow preprocess, Fig. 2) — an operator that relocates a
frozen asset would invalidate the asset-distance model the exploitable
scan is built on.  Hypothesis drives Cell Shift and LDA with randomized
hyper-parameters and random frozen subsets and asserts the frozen cells'
placements are bitwise unchanged.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cell_shift import cell_shift
from repro.core.local_density import local_density_adjustment
from repro.bench.generators import GeneratorParams, generate_design
from repro.place.global_place import GlobalPlacementSpec, global_place
from repro.security.assets import annotate_key_assets
from repro.tech.library import nangate45_library
from repro.tech.technology import nangate45_like


def _base_design():
    library = nangate45_library()
    tech = nangate45_like(num_layers=10)
    params = GeneratorParams(
        n_state=12, n_key=8, cone_inputs=3, cone_depth=3,
        n_inputs=8, n_outputs=8, seed=7,
    )
    netlist = generate_design("frozen_prop", library, params)
    assets = annotate_key_assets(netlist)
    layout = global_place(
        netlist,
        tech,
        GlobalPlacementSpec(
            target_utilization=0.6, seed=7, clustered=tuple(assets)
        ),
    )
    return layout, assets


_BASE_LAYOUT, _ASSETS = _base_design()
_ASSET_LIST = sorted(_ASSETS)


def _frozen_clone(frozen_count):
    layout = _BASE_LAYOUT.clone()
    frozen = [
        a for a in _ASSET_LIST[:frozen_count] if layout.is_placed(a)
    ]
    layout.fixed.update(frozen)
    return layout, frozen


@settings(max_examples=15, deadline=None)
@given(
    st.integers(1, len(_ASSET_LIST)),
    st.integers(3, 12),
    st.sampled_from(["respace", "greedy"]),
)
def test_cell_shift_never_moves_frozen_assets(frozen_count, thresh, strategy):
    layout, frozen = _frozen_clone(frozen_count)
    before = {name: layout.placements[name] for name in frozen}
    cell_shift(layout, thresh_er=thresh, strategy=strategy, assets=_ASSETS)
    for name in frozen:
        assert layout.placements[name] == before[name], (
            f"cell_shift ({strategy}) moved frozen asset {name!r}"
        )


@settings(max_examples=10, deadline=None)
@given(
    st.integers(1, len(_ASSET_LIST)),
    st.sampled_from([2, 4, 8]),
    st.integers(1, 2),
)
def test_lda_never_moves_frozen_assets(frozen_count, grid_n, n_iter):
    layout, frozen = _frozen_clone(frozen_count)
    before = {name: layout.placements[name] for name in frozen}
    local_density_adjustment(layout, _ASSETS, n=grid_n, n_iter=n_iter)
    for name in frozen:
        assert layout.placements[name] == before[name], (
            f"LDA(n={grid_n}, iter={n_iter}) moved frozen asset {name!r}"
        )
