"""Tests for the additive-Trojan attacker."""

import pytest

from repro.security.trojan import AttackReport, TrojanSpec, attempt_insertion


class TestTrojanSpec:
    def test_default_footprint(self, tiny_design):
        spec = TrojanSpec()
        total = spec.total_sites(tiny_design["layout"])
        assert total == 4 * 3 + 2 * 2  # 4 NAND + 2 INV (A2-class, no FF)

    def test_custom_gates(self, tiny_design):
        spec = TrojanSpec(gate_masters=("INV_X1",))
        assert spec.total_sites(tiny_design["layout"]) == 2


class TestAttack:
    def test_baseline_layout_is_attackable(self, misty_design):
        d = misty_design
        report = attempt_insertion(
            d.layout, d.sta, d.assets, routing=d.routing
        )
        assert report.success
        assert report.gates_placed == len(TrojanSpec().gate_masters)
        assert report.region_sites >= 20

    def test_layout_not_mutated(self, misty_design):
        d = misty_design
        before = dict(d.layout.placements)
        sig = d.netlist.signature()
        attempt_insertion(d.layout, d.sta, d.assets, routing=d.routing)
        assert d.layout.placements == before
        assert d.netlist.signature() == sig

    def test_no_regions_no_attack(self, tiny_design):
        # Distance 0 everywhere -> no exploitable regions -> attack fails.
        from repro.security.exploitable import find_exploitable_regions

        report = attempt_insertion(
            tiny_design["layout"],
            tiny_design["sta"],
            tiny_design["assets"],
            thresh_er=10**9,  # impossible threshold
        )
        assert not report.success
        assert "no exploitable regions" in report.reason

    def test_hardened_layout_resists(self, misty_design):
        """After CS hardening, the attacker must fail or be far displaced."""
        from repro.core.cell_shift import cell_shift
        from repro.route.router import global_route
        from repro.security.exploitable import exploitable_distance
        from repro.timing.sta import run_sta

        d = misty_design
        layout = d.layout.clone()
        dists = {
            a: exploitable_distance(d.layout, d.sta, a) for a in d.assets
        }
        cell_shift(layout, thresh_er=20, assets=d.assets, distances=dists)
        routing = global_route(layout)
        sta = run_sta(layout, d.constraints, routing=routing)
        report = attempt_insertion(layout, sta, d.assets, routing=routing)
        assert not report.success

    def test_report_bool(self):
        assert not AttackReport(success=False, reason="x")
        assert AttackReport(success=True, reason="y")

    def test_attack_on_randomly_perturbed_layouts(
        self, tiny_design, session_rng
    ):
        """The attacker behaves sanely on any legal placement variant."""
        from repro.route.router import global_route
        from repro.timing.sta import run_sta

        d = tiny_design
        rng = session_rng.child("trojan-perturb")
        for _ in range(3):
            layout = d["layout"].clone()
            movable = [
                name
                for name in layout.placements
                if name not in layout.fixed and name not in d["assets"]
            ]
            for name in rng.sample(movable, k=min(6, len(movable))):
                width = layout.netlist.instance(name).width_sites
                old = layout.placements[name]
                layout.unplace(name)
                for _ in range(100):
                    row = rng.randrange(layout.num_rows)
                    start = rng.randrange(
                        0, max(1, layout.sites_per_row - width)
                    )
                    if layout.occupancy[row].can_place(start, width):
                        layout.place(name, row, start)
                        break
                else:
                    layout.place(name, old.row, old.start)
            routing = global_route(layout)
            sta = run_sta(layout, d["constraints"], routing=routing)
            before = dict(layout.placements)
            report = attempt_insertion(
                layout, sta, d["assets"], routing=routing
            )
            assert layout.placements == before
            if report.success:
                assert report.gates_placed == len(TrojanSpec().gate_masters)
            else:
                assert report.reason
