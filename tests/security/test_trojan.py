"""Tests for the additive-Trojan attacker."""

import numpy as np
import pytest

from repro.errors import SecurityError
from repro.security.trojan import (
    AttackReport,
    TrojanSpec,
    _nearest_asset_distance,
    _try_place_gates,
    attempt_insertion,
    materialize_implant,
)


class TestTrojanSpec:
    def test_default_footprint(self, tiny_design):
        spec = TrojanSpec()
        total = spec.total_sites(tiny_design["layout"])
        assert total == 4 * 3 + 2 * 2  # 4 NAND + 2 INV (A2-class, no FF)

    def test_custom_gates(self, tiny_design):
        spec = TrojanSpec(gate_masters=("INV_X1",))
        assert spec.total_sites(tiny_design["layout"]) == 2

    def test_empty_footprint_rejected(self):
        with pytest.raises(SecurityError, match="at least one gate"):
            TrojanSpec(gate_masters=())

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SecurityError, match="unknown placement"):
            TrojanSpec(strategy="diagonal")


class TestAttack:
    def test_baseline_layout_is_attackable(self, misty_design):
        d = misty_design
        report = attempt_insertion(
            d.layout, d.sta, d.assets, routing=d.routing
        )
        assert report.success
        assert report.gates_placed == len(TrojanSpec().gate_masters)
        assert report.region_sites >= 20

    def test_layout_not_mutated(self, misty_design):
        d = misty_design
        before = dict(d.layout.placements)
        sig = d.netlist.signature()
        attempt_insertion(d.layout, d.sta, d.assets, routing=d.routing)
        assert d.layout.placements == before
        assert d.netlist.signature() == sig

    def test_no_regions_no_attack(self, tiny_design):
        # Distance 0 everywhere -> no exploitable regions -> attack fails.
        from repro.security.exploitable import find_exploitable_regions

        report = attempt_insertion(
            tiny_design["layout"],
            tiny_design["sta"],
            tiny_design["assets"],
            thresh_er=10**9,  # impossible threshold
        )
        assert not report.success
        assert "no exploitable regions" in report.reason

    def test_hardened_layout_resists(self, misty_design):
        """After CS hardening, the attacker must fail or be far displaced."""
        from repro.core.cell_shift import cell_shift
        from repro.route.router import global_route
        from repro.security.exploitable import exploitable_distance
        from repro.timing.sta import run_sta

        d = misty_design
        layout = d.layout.clone()
        dists = {
            a: exploitable_distance(d.layout, d.sta, a) for a in d.assets
        }
        cell_shift(layout, thresh_er=20, assets=d.assets, distances=dists)
        routing = global_route(layout)
        sta = run_sta(layout, d.constraints, routing=routing)
        report = attempt_insertion(layout, sta, d.assets, routing=routing)
        assert not report.success

    def test_report_bool(self):
        assert not AttackReport(success=False, reason="x")
        assert AttackReport(success=True, reason="y")

    def test_tap_distance_exactly_at_limit_passes(self, misty_design):
        """Boundary semantics: a distance *at* the limit is still legal."""
        d = misty_design
        free = attempt_insertion(d.layout, d.sta, d.assets, routing=d.routing)
        assert free.success
        at_limit = attempt_insertion(
            d.layout,
            d.sta,
            d.assets,
            routing=d.routing,
            spec=TrojanSpec(tap_limit_um=free.region_distance_um),
        )
        assert at_limit.success
        assert at_limit.region_distance_um == free.region_distance_um

    def test_tap_limit_beyond_distance_fails(self, misty_design):
        """Only far regions could hold the fat Trojan; the limit rejects
        them, so the reported failure is the tap-limit one."""
        from repro.security.exploitable import find_exploitable_regions

        d = misty_design
        regions = find_exploitable_regions(
            d.layout, d.sta, d.assets, routing=d.routing
        ).regions
        dists = [
            _nearest_asset_distance(d.layout, r, d.assets)[0]
            for r in regions
        ]
        limit = 1.0
        assert any(limit < x < float("inf") for x in dists)
        biggest = max(r.num_sites for r in regions)
        report = attempt_insertion(
            d.layout,
            d.sta,
            d.assets,
            routing=d.routing,
            spec=TrojanSpec(
                gate_masters=("DFF_X1",) * (biggest + 1),
                tap_limit_um=limit,
            ),
        )
        assert not report.success
        assert "tap limit" in report.reason
        assert report.region_distance_um > limit

    def test_attack_on_randomly_perturbed_layouts(
        self, tiny_design, session_rng
    ):
        """The attacker behaves sanely on any legal placement variant."""
        from repro.route.router import global_route
        from repro.timing.sta import run_sta

        d = tiny_design
        rng = session_rng.child("trojan-perturb")
        for _ in range(3):
            layout = d["layout"].clone()
            movable = [
                name
                for name in layout.placements
                if name not in layout.fixed and name not in d["assets"]
            ]
            for name in rng.sample(movable, k=min(6, len(movable))):
                width = layout.netlist.instance(name).width_sites
                old = layout.placements[name]
                layout.unplace(name)
                for _ in range(100):
                    row = rng.randrange(layout.num_rows)
                    start = rng.randrange(
                        0, max(1, layout.sites_per_row - width)
                    )
                    if layout.occupancy[row].can_place(start, width):
                        layout.place(name, row, start)
                        break
                else:
                    layout.place(name, old.row, old.start)
            routing = global_route(layout)
            sta = run_sta(layout, d["constraints"], routing=routing)
            before = dict(layout.placements)
            report = attempt_insertion(
                layout, sta, d["assets"], routing=routing
            )
            assert layout.placements == before
            if report.success:
                assert report.gates_placed == len(TrojanSpec().gate_masters)
            else:
                assert report.reason


class TestHelpers:
    """Edge cases for the distance/packing helpers."""

    @staticmethod
    def _regions(d):
        from repro.security.exploitable import find_exploitable_regions

        return find_exploitable_regions(
            d.layout, d.sta, d.assets, routing=d.routing
        ).regions

    def test_nearest_asset_distance_no_assets(self, misty_design):
        """A layout with no assets at all has no victim to measure to."""
        region = self._regions(misty_design)[0]
        dist, victim = _nearest_asset_distance(
            misty_design.layout, region, []
        )
        assert dist == float("inf")
        assert victim is None

    def test_nearest_asset_distance_skips_unplaced_assets(
        self, misty_design
    ):
        region = self._regions(misty_design)[0]
        dist, victim = _nearest_asset_distance(
            misty_design.layout, region, ["phantom_asset"]
        )
        assert dist == float("inf")
        assert victim is None

    def test_zero_free_sites_rejects_every_strategy(self, misty_design):
        from repro.layout.gaps import Gap, GapComponent
        from repro.security.exploitable import ExploitableRegion

        region = ExploitableRegion(GapComponent(gaps=[Gap(0, 5, 5)]))
        assert region.num_sites == 0
        assert (
            _try_place_gates(misty_design.layout, region, TrojanSpec())
            is None
        )
        assert (
            _try_place_gates(
                misty_design.layout,
                region,
                TrojanSpec(strategy="random_fit"),
                rng=np.random.default_rng(1),
            )
            is None
        )

    def test_oversized_footprint_never_fits(self, misty_design):
        d = misty_design
        region = max(self._regions(d), key=lambda r: r.num_sites)
        spec = TrojanSpec(
            gate_masters=("DFF_X1",) * (region.num_sites + 1)
        )
        assert _try_place_gates(d.layout, region, spec) is None

    def test_first_fit_places_inside_the_region_gaps(self, misty_design):
        d = misty_design
        region = max(self._regions(d), key=lambda r: r.num_sites)
        spec = TrojanSpec()
        placements = _try_place_gates(d.layout, region, spec)
        assert placements is not None
        assert len(placements) == len(spec.gate_masters)
        gaps = [(g.row, g.lo, g.hi) for g in region.component.gaps]
        lib = d.layout.netlist.library
        for master, row, start in placements:
            width = lib.cell(master).width_sites
            assert any(
                row == g_row and g_lo <= start and start + width <= g_hi
                for g_row, g_lo, g_hi in gaps
            )

    def test_random_fit_is_seed_deterministic(self, misty_design):
        d = misty_design
        region = max(self._regions(d), key=lambda r: r.num_sites)
        spec = TrojanSpec(strategy="random_fit")
        first = _try_place_gates(
            d.layout, region, spec, rng=np.random.default_rng(42)
        )
        second = _try_place_gates(
            d.layout, region, spec, rng=np.random.default_rng(42)
        )
        assert first is not None
        assert first == second


class TestMaterializeErrors:
    def test_failed_report_rejected(self, misty_design):
        with pytest.raises(SecurityError, match="successful report"):
            materialize_implant(
                misty_design.layout,
                AttackReport(success=False, reason="x"),
                TrojanSpec(),
            )

    def test_report_without_victim_rejected(self, misty_design):
        report = AttackReport(
            success=True,
            reason="y",
            placements=(("INV_X1", 0, 0),),
        )
        with pytest.raises(SecurityError, match="no victim"):
            materialize_implant(misty_design.layout, report, TrojanSpec())
